package world

import (
	"fmt"
	"net/netip"
	"time"

	"iotmap/internal/censys"
	"iotmap/internal/certmodel"
	"iotmap/internal/dnsdb"
	"iotmap/internal/dnsmsg"
	"iotmap/internal/dnszone"
	"iotmap/internal/geo"
	"iotmap/internal/hitlist"
	"iotmap/internal/iotserver"
	"iotmap/internal/ipam"
	"iotmap/internal/simrand"
	"iotmap/internal/vnet"
)

// This file holds the observation channels: everything the measurement
// pipeline may legitimately see. Each channel reproduces the coverage
// gaps of its real-world counterpart (Sections 3.3–3.6).

// certValidityMargin pads certificate validity around the study period.
const certValidityMargin = 30 * 24 * time.Hour

// certSpecFor builds the certificate metadata an endpoint would present.
// Shared servers present their hosting platform's certificate, whose
// names do not match any IoT pattern — that is why the shared-IP filter
// (Section 3.4) is needed at all.
func (w *World) certSpecFor(s *Server) certmodel.Spec {
	start, end := w.Days[0], w.Days[len(w.Days)-1]
	spec := certmodel.Spec{
		NotBefore: start.Add(-certValidityMargin),
		NotAfter:  end.Add(certValidityMargin),
		Issuer:    "Study CA",
	}
	if s.Dedicated() {
		spec.SubjectCN = s.Names[0]
		spec.DNSNames = append([]string(nil), s.Names...)
		return spec
	}
	// Hosting-platform certificate (CDN / shared web frontend).
	spec.SubjectCN = fmt.Sprintf("edge-%s.sharedplatform.example", s.Addr)
	spec.DNSNames = []string{spec.SubjectCN, "*.sharedplatform.example"}
	return spec
}

// BuildCensys synthesizes the daily IPv4 scan snapshots. Endpoint
// semantics follow Section 3.3: SNI-required and client-cert-required
// endpoints yield no certificate; plaintext services yield banners only.
func (w *World) BuildCensys() *censys.Service {
	svc := censys.NewService()
	for di, day := range w.Days {
		var records []censys.Record
		for _, id := range w.Order {
			p := w.Providers[id]
			for _, s := range p.Servers {
				if !s.ActiveOn(di) || s.IsV6() {
					continue
				}
				loc := w.censysLocation(s)
				for _, ep := range s.Class.Endpoints {
					rec := censys.Record{
						Addr:      s.Addr,
						Port:      ep.Port,
						Transport: ep.Transport,
						Protocol:  ep.Protocol,
						Location:  loc,
					}
					switch {
					case ep.Protocol.TLSCapable() && ep.Policy == iotserver.PolicyDefaultCert:
						spec := w.certSpecFor(s)
						rec.Cert = &spec
						rec.Banner = "tls"
					case ep.Protocol.TLSCapable():
						// Port open, handshake failed: no certificate.
						rec.Banner = ""
					default:
						rec.Banner = plaintextBanner(ep)
					}
					records = append(records, rec)
				}
			}
		}
		svc.Put(censys.NewSnapshot(day, records))
	}
	return svc
}

func plaintextBanner(ep EndpointSpec) string {
	switch ep.Protocol {
	case 0:
		return ""
	default:
		return ep.Protocol.String()
	}
}

// censysLocation returns the scan provider's geolocation opinion: the
// true metro most of the time, a wrong one at the small rate that forces
// the majority vote of Section 4.2.
const geoErrorRate = 0.05

func (w *World) censysLocation(s *Server) geo.Location {
	return w.noisyLocation(s, "censys-geo")
}

func (w *World) noisyLocation(s *Server, source string) geo.Location {
	rng := simrand.Derive(w.Cfg.Seed, "geoloc", source, s.Addr.String())
	if rng.Float64() >= geoErrorRate {
		return s.Region
	}
	all := w.Geo.All()
	return all[rng.Intn(len(all))]
}

// GeoVotes returns the independent location opinions available for an
// address (prefix-announcement location, scan metadata, looking-glass
// pings) — the majority-vote inputs for IPs whose hostnames carry no
// region hint.
func (w *World) GeoVotes(addr netip.Addr) []geo.Vote {
	s, ok := w.byAddr[addr]
	if !ok {
		return nil
	}
	return []geo.Vote{
		{Source: "prefix-announcement", Location: w.noisyLocation(s, "hurricane")},
		{Source: "censys-geo", Location: w.noisyLocation(s, "censys-geo")},
		{Source: "looking-glass", Location: w.noisyLocation(s, "ping")},
	}
}

// sharedNonIoTNames is how many unrelated domains a shared IP carries in
// passive DNS — far above any sane dedicated-IP threshold.
const sharedNonIoTNames = 12

// BuildDNSDB synthesizes the passive-DNS database over the study period.
// Sensor coverage is partial per provider (PDNSNameFrac / PDNSAddrFrac);
// shared servers accumulate many non-IoT names; a few dedicated servers
// get one or two stray names to exercise threshold robustness.
func (w *World) BuildDNSDB() *dnsdb.DB {
	db := dnsdb.New()
	for _, id := range w.Order {
		p := w.Providers[id]
		spec := p.Spec
		for _, name := range p.Names() {
			nameRng := simrand.Derive(w.Cfg.Seed, "pdns-name", name)
			if !nameRng.Bool(spec.PDNSNameFrac) {
				continue // the sensors never saw this FQDN
			}
			recorded := 0
			record := func(s *Server, rng *simrand.Source) {
				// The sensors witness popular mappings most days they
				// are live: record a sighting on ~80% of the server's
				// active days (per-day coverage is what Figure 3's
				// daily source split measures).
				for di := s.FirstDay; di <= s.LastDay && di < len(w.Days); di++ {
					if di != s.FirstDay && !rng.Bool(0.8) {
						continue
					}
					at := w.Days[di].Add(time.Duration(rng.Intn(24)) * time.Hour)
					db.RecordAddr(name, s.Addr, at)
				}
				recorded++
			}
			for _, s := range p.names[name] {
				addrRng := simrand.Derive(w.Cfg.Seed, "pdns-addr", name, s.Addr.String())
				if !addrRng.Bool(spec.PDNSAddrFrac) {
					continue
				}
				record(s, addrRng)
			}
			// A sensor that observed the FQDN at all saw at least one
			// answer: never leave an observed name without rdata, or
			// active resolution (which targets DNSDB names) could miss
			// whole shards.
			if recorded == 0 && len(p.names[name]) > 0 {
				s := p.names[name][0]
				record(s, simrand.Derive(w.Cfg.Seed, "pdns-addr-floor", name))
			}
		}
		// Non-IoT names over shared IPs, plus occasional strays on
		// dedicated ones.
		for _, s := range p.Servers {
			rng := simrand.Derive(w.Cfg.Seed, "pdns-shared", s.Addr.String())
			if !s.Dedicated() {
				for k := 0; k < sharedNonIoTNames+rng.Intn(8); k++ {
					n := fmt.Sprintf("www.site%d.shared-web.example", rng.Intn(100000))
					at := w.Days[rng.Intn(len(w.Days))].Add(time.Duration(rng.Intn(24)) * time.Hour)
					db.RecordAddr(n, s.Addr, at)
				}
			} else if rng.Bool(0.05) {
				n := fmt.Sprintf("vanity%d.example.org", rng.Intn(100000))
				at := w.Days[rng.Intn(len(w.Days))].Add(time.Duration(rng.Intn(24)) * time.Hour)
				db.RecordAddr(n, s.Addr, at)
			}
		}
	}
	return db
}

// Vantage points for the active-DNS campaign: two in Europe, one in the
// US (Section 3.3).
var VantagePointViews = []string{"eu-1", "eu-2", "us-1"}

func vpContinent(view string) geo.Continent {
	switch view {
	case "eu-1", "eu-2":
		return geo.Europe
	case "us-1":
		return geo.NorthAmerica
	default:
		return geo.Unknown
	}
}

// maxDNSAnswers bounds one response's address count (rotation window).
const maxDNSAnswers = 13

// ZoneStore builds the authoritative DNS content for one study day.
// Geo-DNS providers answer per-view with their nearest-continent servers;
// every answer set is a rotating window so daily re-resolution discovers
// additional addresses (the mechanism behind the paper's +17% from three
// vantage points and the value of daily resolutions).
func (w *World) ZoneStore(dayIdx int) *dnszone.Store {
	store := dnszone.NewStore()
	for _, id := range w.Order {
		p := w.Providers[id]
		store.AddZone(p.Spec.SLD, dnsmsg.SOAData{
			MName: "ns1." + p.Spec.SLD + ".", RName: "hostmaster." + p.Spec.SLD + ".",
			Serial: uint32(2022022800 + dayIdx), Minimum: 300,
		})
		for _, name := range p.Names() {
			// Canonicalize once per name: AddAddr canonicalizes every
			// record, and a per-day rebuild multiplies that by servers ×
			// views. A pre-canonical name takes the no-alloc fast path.
			cname := dnsmsg.CanonicalName(name)
			var active []*Server
			for _, s := range p.names[name] {
				if s.ActiveOn(dayIdx) {
					active = append(active, s)
				}
			}
			if len(active) == 0 {
				continue
			}
			if p.Spec.GeoDNS {
				for vi, view := range VantagePointViews {
					cont := vpContinent(view)
					var near []*Server
					for _, s := range active {
						if s.Region.Continent == cont {
							near = append(near, s)
						}
					}
					if len(near) == 0 {
						near = active
					}
					for _, s := range rotate(near, dayIdx*3+vi) {
						store.AddAddr(view, cname, s.Addr, 60)
					}
				}
				for _, s := range rotate(active, dayIdx) {
					store.AddAddr(dnszone.DefaultView, cname, s.Addr, 60)
				}
			} else {
				for vi, view := range VantagePointViews {
					for _, s := range rotate(active, dayIdx*3+vi) {
						store.AddAddr(view, cname, s.Addr, 300)
					}
				}
				for _, s := range rotate(active, dayIdx) {
					store.AddAddr(dnszone.DefaultView, cname, s.Addr, 300)
				}
			}
		}
	}
	return store
}

// rotate returns a deterministic window of up to maxDNSAnswers servers.
func rotate(servers []*Server, offset int) []*Server {
	n := len(servers)
	if n <= maxDNSAnswers {
		return servers
	}
	out := make([]*Server, 0, maxDNSAnswers)
	start := (offset * maxDNSAnswers) % n
	if start < 0 {
		start += n
	}
	for i := 0; i < maxDNSAnswers; i++ {
		out = append(out, servers[(start+i)%n])
	}
	return out
}

// BuildHitlist assembles the IPv6 hitlist with the given coverage
// fraction. Providers whose v6 estate never answers unsolicited probes
// (IPv6ActiveOnly) stay off the list, as on the real hitlists.
func (w *World) BuildHitlist(coverage float64) *hitlist.Hitlist {
	var candidates []hitlist.Entry
	for _, id := range w.Order {
		p := w.Providers[id]
		if p.Spec.IPv6ActiveOnly {
			continue
		}
		for _, s := range p.Servers {
			if !s.IsV6() {
				continue
			}
			var ports []uint16
			for _, ep := range s.Class.Endpoints {
				for _, iot := range hitlist.IoTPorts {
					if ep.Port == iot {
						ports = append(ports, ep.Port)
					}
				}
			}
			if len(ports) == 0 {
				continue
			}
			candidates = append(candidates, hitlist.Entry{Addr: s.Addr, Ports: ports})
		}
	}
	return hitlist.Sample(candidates, coverage, w.Cfg.Seed)
}

// DeployServers binds gateway endpoints for the given servers into a
// vnet fabric, issuing real certificates. Used for the live IPv6 scan
// and protocol-level integration tests; the IPv4-wide channel is the
// metadata snapshot from BuildCensys.
func (w *World) DeployServers(f *vnet.Fabric, ca *certmodel.CA, servers []*Server) error {
	gw := iotserver.NewGateway(f, ca)
	for _, s := range servers {
		for _, epSpec := range s.Class.Endpoints {
			hostnames := s.Names
			if !s.Dedicated() {
				hostnames = []string{fmt.Sprintf("edge-%s.sharedplatform.example", s.Addr)}
			}
			err := gw.Bind(iotserver.Endpoint{
				Addr:      netip.AddrPortFrom(s.Addr, epSpec.Port),
				Protocol:  epSpec.Protocol,
				Policy:    epSpec.Policy,
				Hostnames: hostnames,
			})
			if err != nil {
				return fmt.Errorf("world: deploy %s %s:%d: %w", s.Provider, s.Addr, epSpec.Port, err)
			}
		}
	}
	return nil
}

// V6Servers returns every IPv6 server of every provider.
func (w *World) V6Servers() []*Server {
	var out []*Server
	for _, s := range w.AllServers() {
		if s.IsV6() {
			out = append(out, s)
		}
	}
	return out
}

// DisclosedIPs returns the ground-truth IP list a provider publishes
// (Cisco, Siemens — Section 3.4), empty otherwise.
func (w *World) DisclosedIPs(id string) []netip.Addr {
	p, ok := w.Providers[id]
	if !ok || p.Spec.Discloses != DiscloseIPs {
		return nil
	}
	var out []netip.Addr
	for _, s := range p.Servers {
		out = append(out, s.Addr)
	}
	return ipam.SortAddrs(out)
}

// DisclosedPrefixes returns the published prefix list (Microsoft). The
// prefixes cover far more addresses than are ever active — the reason
// the paper's prefix-based validation needs the traffic cross-check.
func (w *World) DisclosedPrefixes(id string) []netip.Prefix {
	p, ok := w.Providers[id]
	if !ok || p.Spec.Discloses != DisclosePrefixes {
		return nil
	}
	seen := map[netip.Prefix]struct{}{}
	var out []netip.Prefix
	for _, s := range p.Servers {
		pfx := w.prefixOf[s.Addr]
		if _, dup := seen[pfx]; dup {
			continue
		}
		seen[pfx] = struct{}{}
		out = append(out, pfx)
	}
	return out
}

// AliasOf maps a provider ID to its anonymized ISP-analysis label.
func (w *World) AliasOf(id string) string {
	if p, ok := w.Providers[id]; ok {
		return p.Spec.Alias
	}
	return ""
}

// ByAlias finds a provider by anonymized label.
func (w *World) ByAlias(alias string) (*Provider, bool) {
	for _, id := range w.Order {
		if w.Providers[id].Spec.Alias == alias {
			return w.Providers[id], true
		}
	}
	return nil, false
}
