package world

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strings"
	"time"

	"iotmap/internal/asdb"
	"iotmap/internal/geo"
	"iotmap/internal/ipam"
	"iotmap/internal/simrand"
)

// Config parameterizes world construction.
type Config struct {
	// Seed drives every stochastic decision; equal seeds give equal
	// worlds.
	Seed int64
	// Scale multiplies the per-provider server counts of the specs
	// (1.0 reproduces the paper's Figure 3 totals, ≈0.02 suits unit
	// tests).
	Scale float64
	// Days is the study period (default StudyDays()).
	Days []time.Time
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Days) == 0 {
		c.Days = StudyDays()
	}
	return c
}

// Server is one ground-truth gateway server.
type Server struct {
	Addr     netip.Addr
	Provider string
	Class    *ServerClass
	Region   geo.Location
	// ASN announces the covering prefix.
	ASN asdb.ASN
	// CloudHost is the hosting cloud's ID for PR addresses ("" for own).
	CloudHost string
	// Names are the FQDNs resolving to this server.
	Names []string
	// FirstDay/LastDay bound the server's lifetime as day indexes into
	// Config.Days (inclusive). Churned-out servers end early; their
	// replacements start late.
	FirstDay, LastDay int
}

// ActiveOn reports whether the server exists on day index d.
func (s *Server) ActiveOn(d int) bool { return d >= s.FirstDay && d <= s.LastDay }

// IsV6 reports the address family.
func (s *Server) IsV6() bool { return s.Addr.Is6() && !s.Addr.Is4In6() }

// Dedicated reports whether the server exclusively serves IoT.
func (s *Server) Dedicated() bool { return !s.Class.Shared }

// Provider is the built deployment of one spec.
type Provider struct {
	Spec    Spec
	Servers []*Server
	// Regions is the resolved footprint.
	Regions []geo.Location
	// names maps FQDN -> member servers (including churned ones).
	names map[string][]*Server
}

// Names returns the provider's FQDNs, sorted.
func (p *Provider) Names() []string {
	out := make([]string, 0, len(p.names))
	for n := range p.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ServersForName returns the servers behind one FQDN.
func (p *Provider) ServersForName(name string) []*Server { return p.names[name] }

// ActiveServers returns the servers alive on day d.
func (p *Provider) ActiveServers(d int) []*Server {
	var out []*Server
	for _, s := range p.Servers {
		if s.ActiveOn(d) {
			out = append(out, s)
		}
	}
	return out
}

// World is the built ground truth.
type World struct {
	Cfg       Config
	Days      []time.Time
	Geo       *geo.DB
	AS        *asdb.Table
	Providers map[string]*Provider
	// Order is the providers in Table 1's alphabetical order.
	Order []string
	// byAddr indexes every server.
	byAddr map[netip.Addr]*Server

	rng *simrand.Source
	// hostSeqs continues host allocation per prefix for churn
	// replacements.
	hostSeqs map[netip.Prefix]*ipam.HostSeq
	// prefixOf remembers each server's covering allocation.
	prefixOf map[netip.Addr]netip.Prefix
}

// ServerAt looks up a server by address.
func (w *World) ServerAt(a netip.Addr) (*Server, bool) {
	s, ok := w.byAddr[a]
	return s, ok
}

// AllServers returns every server of every provider.
func (w *World) AllServers() []*Server {
	var out []*Server
	for _, id := range w.Order {
		out = append(out, w.Providers[id].Servers...)
	}
	return out
}

// DayIndex maps a time to its day index, or -1.
func (w *World) DayIndex(t time.Time) int {
	for i, d := range w.Days {
		if t.Year() == d.Year() && t.YearDay() == d.YearDay() {
			return i
		}
	}
	return -1
}

// cloudASNs fixes the hosting clouds' AS numbers (each large cloud
// announces from several ASes, which is how PR-only providers reach
// Table 1's multi-AS counts).
var cloudASNs = map[string][]asdb.ASN{
	CloudAWS:     {16509, 14618, 8987, 7224},
	CloudAzure:   {8075, 8068, 8069},
	CloudAlibaba: {45102, 45103, 37963},
	CloudAkamai:  {20940, 16625},
}

// Build constructs the world.
func Build(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	w := &World{
		Cfg:       cfg,
		Days:      cfg.Days,
		Geo:       geo.World(),
		AS:        asdb.NewTable(),
		Providers: map[string]*Provider{},
		byAddr:    map[netip.Addr]*Server{},
		rng:       simrand.Derive(cfg.Seed, "world"),
		hostSeqs:  map[netip.Prefix]*ipam.HostSeq{},
		prefixOf:  map[netip.Addr]netip.Prefix{},
	}

	// Master pools carve per-AS address space.
	master4 := ipam.NewPool(netip.MustParsePrefix("16.0.0.0/6"))
	master6 := ipam.NewPool(netip.MustParsePrefix("2600::/24"))

	// Cloud ASes exist up front (sorted: pool carving must be
	// deterministic).
	asPools := map[asdb.ASN]*asPool{}
	cloudNames := make([]string, 0, len(cloudASNs))
	for name := range cloudASNs {
		cloudNames = append(cloudNames, name)
	}
	sort.Strings(cloudNames)
	for _, name := range cloudNames {
		for i, asn := range cloudASNs[name] {
			w.AS.RegisterAS(asdb.AS{Number: asn, Name: fmt.Sprintf("%s-%d", strings.ToUpper(name), i+1), Org: name})
			asPools[asn] = &asPool{v4: ipam.NewPool(master4.MustAllocPrefix(12)), v6: ipam.NewPool(master6.MustAllocPrefix(32))}
		}
	}

	nextASN := asdb.ASN(64500)
	for _, spec := range Specs() {
		p, err := w.buildProvider(spec, &nextASN, asPools, master4, master6)
		if err != nil {
			return nil, fmt.Errorf("world: provider %s: %w", spec.ID, err)
		}
		w.Providers[spec.ID] = p
		w.Order = append(w.Order, spec.ID)
	}
	sort.Strings(w.Order)
	return w, nil
}

// asPool bundles the v4/v6 pools of one AS.
type asPool struct {
	v4, v6 *ipam.Pool
}

func (w *World) buildProvider(spec Spec, nextASN *asdb.ASN, asPools map[asdb.ASN]*asPool, master4, master6 *ipam.Pool) (*Provider, error) {
	rng := simrand.Derive(w.Cfg.Seed, "provider", spec.ID)

	// Own ASes.
	var own []asdb.ASN
	for i := 0; i < spec.OwnASNs; i++ {
		asn := *nextASN
		*nextASN++
		w.AS.RegisterAS(asdb.AS{Number: asn, Name: fmt.Sprintf("%s-%d", strings.ToUpper(spec.ID), i+1), Org: spec.ID})
		asPools[asn] = &asPool{v4: ipam.NewPool(master4.MustAllocPrefix(12)), v6: ipam.NewPool(master6.MustAllocPrefix(32))}
		own = append(own, asn)
	}
	// Cloud ASes, for PR placements: each host contributes
	// CloudASCount[host] of its ASes (default 1).
	cloudOf := map[asdb.ASN]string{}
	var clouds []asdb.ASN
	for _, host := range spec.CloudHosts {
		pool, ok := cloudASNs[host]
		if !ok {
			return nil, fmt.Errorf("unknown cloud host %q", host)
		}
		n := spec.CloudASCount[host]
		if n <= 0 {
			n = 1
		}
		if n > len(pool) {
			n = len(pool)
		}
		for _, asn := range pool[:n] {
			cloudOf[asn] = host
			clouds = append(clouds, asn)
		}
	}
	// PR providers lead with their hosting clouds so that even one-server
	// fleets at small Scale land on cloud address space; DI(+PR) leads
	// with the provider's own network.
	var asns []asdb.ASN
	if spec.Strategy == PR {
		asns = append(append(asns, clouds...), own...)
	} else {
		asns = append(append(asns, own...), clouds...)
	}
	if len(asns) == 0 {
		return nil, fmt.Errorf("no ASes")
	}

	regions, err := w.resolveFootprint(spec, rng)
	if err != nil {
		return nil, err
	}

	p := &Provider{Spec: spec, Regions: regions, names: map[string][]*Server{}}

	nV4 := scaleCount(spec.V4Servers, w.Cfg.Scale)
	nV6 := scaleCount(spec.V6Servers, w.Cfg.Scale)
	n24 := scaleCount(spec.V4Slash24, w.Cfg.Scale)
	n56 := scaleCount(spec.V6Slash56, w.Cfg.Scale)
	if spec.V6Servers == 0 {
		nV6, n56 = 0, 0
	}

	if err := w.placeFamily(p, rng, asns, cloudOf, asPools, regions, nV4, n24, false); err != nil {
		return nil, err
	}
	if nV6 > 0 {
		if err := w.placeFamily(p, rng, asns, cloudOf, asPools, regions, nV6, n56, true); err != nil {
			return nil, err
		}
	}
	w.applyChurn(p, rng)

	// Announce every distinct allocation prefix.
	seen := map[netip.Prefix]asdb.ASN{}
	for _, s := range p.Servers {
		pfx := w.prefixOf[s.Addr]
		if _, done := seen[pfx]; !done {
			seen[pfx] = s.ASN
			if err := w.AS.Announce(pfx, s.ASN); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// resolveFootprint expands a Footprint into concrete locations.
func (w *World) resolveFootprint(spec Spec, rng *simrand.Source) ([]geo.Location, error) {
	fp := spec.Footprint
	if len(fp.Explicit) > 0 {
		var out []geo.Location
		for _, code := range fp.Explicit {
			l, ok := w.Geo.ByRegion(code)
			if !ok {
				return nil, fmt.Errorf("unknown region code %q", code)
			}
			out = append(out, l)
		}
		return out, nil
	}
	byCont := map[geo.Continent][]geo.Location{}
	for _, l := range w.Geo.All() {
		if spec.HyphenatedRegions && !strings.Contains(l.Region, "-") {
			continue // this provider's naming scheme needs AWS-style codes
		}
		byCont[l.Continent] = append(byCont[l.Continent], l)
	}
	// Apportion the location budget over continents by mix weight, then
	// take the first k metros of each continent (deterministic).
	conts := make([]geo.Continent, 0, len(fp.Mix))
	weights := make([]float64, 0, len(fp.Mix))
	for _, c := range []geo.Continent{geo.NorthAmerica, geo.Europe, geo.Asia, geo.SouthAmerica, geo.Oceania, geo.Africa} {
		if wgt, ok := fp.Mix[c]; ok && wgt > 0 {
			conts = append(conts, c)
			weights = append(weights, wgt)
		}
	}
	counts := apportion(fp.Locations, weights)
	var out []geo.Location
	for i, c := range conts {
		avail := byCont[c]
		k := counts[i]
		if k > len(avail) {
			k = len(avail)
		}
		out = append(out, avail[:k]...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("footprint resolved to zero locations")
	}
	return out, nil
}

// placeFamily creates the servers of one address family.
func (w *World) placeFamily(p *Provider, rng *simrand.Source, asns []asdb.ASN, cloudOf map[asdb.ASN]string, asPools map[asdb.ASN]*asPool, regions []geo.Location, nServers, nPrefixes int, v6 bool) error {
	spec := p.Spec
	if nServers <= 0 {
		return nil
	}
	if nPrefixes <= 0 {
		nPrefixes = 1
	}
	if nPrefixes > nServers {
		nPrefixes = nServers
	}

	perRegion := apportionRegions(spec, regions, nServers)
	prefWeights := make([]float64, len(regions))
	for i, c := range perRegion {
		prefWeights[i] = float64(c)
	}
	prefixesPerRegion := apportion(nPrefixes, prefWeights)

	// Classes are apportioned globally and dealt out as an interleaved
	// sequence: apportioning per region collapses minority classes to
	// zero whenever a region holds a single server (small fleets would
	// lose their shared/leak flavours entirely).
	classWeights := make([]float64, len(spec.Classes))
	for i, c := range spec.Classes {
		classWeights[i] = c.Weight
	}
	classSeq := dealClasses(nServers, classWeights)
	seqIdx := 0

	lastDay := len(w.Days) - 1
	globalShard := 0
	for ri, region := range regions {
		count := perRegion[ri]
		if count == 0 {
			continue
		}
		asn := asns[ri%len(asns)]
		pool := asPools[asn]
		npfx := prefixesPerRegion[ri]
		if npfx <= 0 {
			npfx = 1
		}
		if npfx > count {
			npfx = count
		}
		prefixes := make([]netip.Prefix, npfx)
		for i := range prefixes {
			if v6 {
				prefixes[i] = pool.v6.MustAllocPrefix(56)
			} else {
				prefixes[i] = pool.v4.MustAllocPrefix(24)
			}
			w.hostSeqs[prefixes[i]] = ipam.Hosts(prefixes[i])
		}
		for idxInRegion := 0; idxInRegion < count; idxInRegion++ {
			ci := classSeq[seqIdx]
			seqIdx++
			pfx := prefixes[idxInRegion%len(prefixes)]
			addr := w.hostSeqs[pfx].Next()
			if !addr.IsValid() {
				return fmt.Errorf("prefix %v exhausted", pfx)
			}
			srv := &Server{
				Addr:      addr,
				Provider:  spec.ID,
				Class:     &spec.Classes[ci],
				Region:    region,
				ASN:       asn,
				CloudHost: cloudOf[asn],
				FirstDay:  0,
				LastDay:   lastDay,
			}
			shard := globalShard + idxInRegion
			srv.Names = w.namesFor(spec, region, shard, rng)
			p.Servers = append(p.Servers, srv)
			w.byAddr[addr] = srv
			w.prefixOf[addr] = pfx
			for _, n := range srv.Names {
				p.names[n] = append(p.names[n], srv)
			}
		}
		globalShard += (count + max(spec.ServersPerName, 1) - 1)
	}
	return nil
}

// classTargets is the per-class server count: the global apportionment
// with a floor of one server for every positive-weight class (when the
// fleet can afford it). Providers run every documented flavour of
// gateway even when a flavour is a sliver of the fleet — Siemens' 10%
// leak class must exist at any world scale.
func classTargets(n int, weights []float64) []int {
	counts := apportion(n, weights)
	positives := 0
	for _, w := range weights {
		if w > 0 {
			positives++
		}
	}
	if n < positives {
		return counts
	}
	for ci, w := range weights {
		if w <= 0 || counts[ci] > 0 {
			continue
		}
		// Steal one from the largest class.
		largest := -1
		for cj := range counts {
			if largest < 0 || counts[cj] > counts[largest] {
				largest = cj
			}
		}
		if largest >= 0 && counts[largest] > 1 {
			counts[largest]--
			counts[ci]++
		}
	}
	return counts
}

// dealClasses builds a length-n sequence of class indexes whose totals
// follow classTargets, interleaved so every region slice of the
// sequence sees a representative mix.
func dealClasses(n int, weights []float64) []int {
	counts := classTargets(n, weights)
	remaining := append([]int(nil), counts...)
	out := make([]int, 0, n)
	for len(out) < n {
		// Pick the class with the largest remaining deficit relative to
		// its target share (largest-remainder round-robin).
		best, bestScore := -1, -1.0
		for ci := range remaining {
			if remaining[ci] == 0 {
				continue
			}
			score := float64(remaining[ci]) / float64(counts[ci])
			if score > bestScore {
				best, bestScore = ci, score
			}
		}
		if best < 0 {
			break
		}
		out = append(out, best)
		remaining[best]--
	}
	return out
}

// namesFor mints the FQDNs of the server at shard index.
func (w *World) namesFor(spec Spec, region geo.Location, shard int, rng *simrand.Source) []string {
	per := spec.ServersPerName
	if per < 1 {
		per = 1
	}
	shardID := shard / per
	switch spec.Scheme {
	case NameFixedGlobal:
		return append([]string(nil), spec.FixedNames...)
	case NameHashRegion:
		return []string{fmt.Sprintf("%s.%s.%s.%s", hashLabel(w.Cfg.Seed, spec.ID, shardID), spec.NameLabel, region.Region, spec.SLD)}
	case NameRegionFixed:
		label := spec.NameLabel
		if label == "" {
			// Sierra-style continent labels: na/eu/as.
			label = continentLabel(region.Continent)
			return []string{fmt.Sprintf("%s.%s", label, spec.SLD)}
		}
		return []string{fmt.Sprintf("%s.%s.%s", label, region.Region, spec.SLD)}
	case NameRegionCustomer:
		return []string{fmt.Sprintf("%s.%s.%s", hashLabel(w.Cfg.Seed, spec.ID, shardID), mindsphereLabel(region.Continent), spec.SLD)}
	default: // NameCustomer
		if spec.NameLabel != "" {
			return []string{fmt.Sprintf("%s.%s.%s", hashLabel(w.Cfg.Seed, spec.ID, shardID), spec.NameLabel, spec.SLD)}
		}
		return []string{fmt.Sprintf("%s.%s", hashLabel(w.Cfg.Seed, spec.ID, shardID), spec.SLD)}
	}
}

func continentLabel(c geo.Continent) string {
	switch c {
	case geo.NorthAmerica:
		return "na"
	case geo.Europe:
		return "eu"
	case geo.Asia:
		return "as"
	default:
		return "ot"
	}
}

func mindsphereLabel(c geo.Continent) string {
	switch c {
	case geo.Europe:
		return "eu1"
	case geo.NorthAmerica:
		return "us1"
	case geo.Asia:
		return "cn1"
	default:
		return "eu2"
	}
}

// hashLabel derives a stable customer/shard label.
func hashLabel(seed int64, providerID string, shard int) string {
	rng := simrand.Derive(seed, "name", providerID, fmt.Sprint(shard))
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 8 + rng.Intn(4)
	b := make([]byte, n)
	b[0] = alphabet[rng.Intn(26)] // labels start with a letter
	for i := 1; i < n; i++ {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// applyChurn retires ChurnDaily of the fleet each day and spawns
// replacements in the same prefix/region/class/name shard (Figure 4's
// cloud-churn signature: the name stays, the address moves).
func (w *World) applyChurn(p *Provider, rng *simrand.Source) {
	churn := p.Spec.ChurnDaily
	if churn <= 0 {
		return
	}
	lastDay := len(w.Days) - 1
	for d := 1; d <= lastDay; d++ {
		var alive []*Server
		for _, s := range p.Servers {
			if s.ActiveOn(d) && s.ActiveOn(d-1) {
				alive = append(alive, s)
			}
		}
		k := int(math.Round(churn * float64(len(alive))))
		for i := 0; i < k && len(alive) > 0; i++ {
			victimIdx := rng.Intn(len(alive))
			victim := alive[victimIdx]
			alive = append(alive[:victimIdx], alive[victimIdx+1:]...)
			victim.LastDay = d - 1

			pfx := w.prefixOf[victim.Addr]
			addr := w.hostSeqs[pfx].Next()
			if !addr.IsValid() {
				continue // prefix exhausted; retire without replacement
			}
			repl := &Server{
				Addr:      addr,
				Provider:  victim.Provider,
				Class:     victim.Class,
				Region:    victim.Region,
				ASN:       victim.ASN,
				CloudHost: victim.CloudHost,
				Names:     append([]string(nil), victim.Names...),
				FirstDay:  d,
				LastDay:   lastDay,
			}
			p.Servers = append(p.Servers, repl)
			w.byAddr[addr] = repl
			w.prefixOf[addr] = pfx
			for _, n := range repl.Names {
				p.names[n] = append(p.names[n], repl)
			}
		}
	}
}

// apportionRegions distributes nServers over a provider's regions.
// Explicit footprints are front-loaded (the first listed region is the
// flagship deployment); sampled footprints apportion hierarchically —
// first across continents by the footprint mix, then uniformly across
// the continent's metros — so small fleets still span the intended
// continents (Figures 13/15 depend on this spread).
func apportionRegions(spec Spec, regions []geo.Location, nServers int) []int {
	out := make([]int, len(regions))
	if nServers <= 0 || len(regions) == 0 {
		return out
	}
	if len(spec.Footprint.Explicit) > 0 {
		weights := make([]float64, len(regions))
		for i := range regions {
			weights[i] = 1 / float64(i+1)
		}
		return apportion(nServers, weights)
	}
	// Group region indices per continent, preserving order.
	contOrder := []geo.Continent{}
	regionsOf := map[geo.Continent][]int{}
	for i, r := range regions {
		if _, seen := regionsOf[r.Continent]; !seen {
			contOrder = append(contOrder, r.Continent)
		}
		regionsOf[r.Continent] = append(regionsOf[r.Continent], i)
	}
	contWeights := make([]float64, len(contOrder))
	for i, c := range contOrder {
		contWeights[i] = spec.Footprint.Mix[c]
		if contWeights[i] <= 0 {
			contWeights[i] = 0.01
		}
	}
	perCont := apportion(nServers, contWeights)
	for i, c := range contOrder {
		idxs := regionsOf[c]
		uniform := make([]float64, len(idxs))
		for j := range uniform {
			uniform[j] = 1
		}
		counts := apportion(perCont[i], uniform)
		for j, idx := range idxs {
			out[idx] = counts[j]
		}
	}
	return out
}

// scaleCount applies the world scale with a floor of 1 for non-zero
// targets.
func scaleCount(n int, scale float64) int {
	if n <= 0 {
		return 0
	}
	v := int(math.Round(float64(n) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

// apportion splits n into len(weights) integer parts proportional to
// weights (largest-remainder method; deterministic).
func apportion(n int, weights []float64) []int {
	out := make([]int, len(weights))
	if n <= 0 || len(weights) == 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		out[0] = n
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	assigned := 0
	rems := make([]rem, 0, len(weights))
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(n) * w / total
		fl := int(math.Floor(exact))
		out[i] = fl
		assigned += fl
		rems = append(rems, rem{idx: i, frac: exact - float64(fl)})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < n && len(rems) > 0; i++ {
		out[rems[i%len(rems)].idx]++
		assigned++
	}
	return out
}
