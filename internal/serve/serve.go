// Package serve turns the batch collector into a long-lived service:
// a shared sliding flows.Window fed by a runtime stream registry
// (attach and detach TCP dials, inbound connections, and recorded
// files while the daemon runs), an HTTP API exposing the live study
// (/figures), wire and window health (/stats, /streams, /window), and
// periodic atomic checkpoints so a crashed or restarted daemon resumes
// the trailing window without re-ingesting it.
//
// The package deliberately knows nothing about figure rendering or the
// synthetic world: the daemon frontend (cmd/iotcollect -serve) injects
// a RenderFigures closure, which keeps serve free of import cycles and
// makes the rendered text byte-comparable across restarts — the
// property the kill-resume tests pin.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"iotmap/internal/collector"
	"iotmap/internal/core/flows"
)

// Config sizes the service.
type Config struct {
	// Index classifies flow endpoints (required). It must be the same
	// index (same backends, same aliases) across restarts: checkpoints
	// fingerprint it and refuse to restore against a different one.
	Index *flows.BackendIndex
	// Days anchors the study clock; Days[0] is the window epoch
	// (required).
	Days []time.Time
	// Opts configures the analysis. Opts.SamplingRate is the fallback
	// scale for header-less record streams, exactly as in
	// collector.Config; the window itself always runs at rate 1 (the
	// wire path pre-scales).
	Opts flows.Options
	// WindowHours is the trailing window span; 0 means the whole study
	// (len(Days)*24). Must be a positive multiple of 24.
	WindowHours int
	// Policy is the per-stream fault response. QuarantineStream is
	// rejected (window mode shares one sink across streams).
	Policy collector.ErrorPolicy
	// StallTimeout arms the per-stream read-stall watchdog; 0 disables.
	StallTimeout time.Duration
	// CheckpointPath, when set, is where checkpoints are written
	// (atomically: temp file + rename, previous checkpoint kept as
	// CheckpointPath+".prev") and restored from at startup. A torn or
	// corrupt newest checkpoint falls back to the ".prev" keep with a
	// logged warning and a bump of the checkpointFallbacks counter in
	// GET /stats.
	CheckpointPath string
	// CheckpointEvery is the checkpoint timer period; 0 disables the
	// timer (checkpoints still happen on shutdown and on demand).
	CheckpointEvery time.Duration
	// RenderFigures renders the study as text for GET /figures. Nil
	// falls back to the JSON summary.
	RenderFigures func(cc *flows.ContactCounter, col *flows.Collector) string
	// ReconnectSeed drives the seeded redial jitter of dial feeds
	// (AttachDial routes through collector.IngestReconnecting): with
	// the same seed a replayed deployment redials on an identical
	// schedule. Zero is a valid seed.
	ReconnectSeed int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the API
	// mux. Off by default: the profiling endpoints expose goroutine
	// stacks and heap contents, so they are opt-in per deployment.
	EnablePprof bool
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Service is a running collector daemon: one shared window, a stream
// registry, and an HTTP API. Create with New, drive with Run (or mount
// Handler and ServeFeeds yourself), stop by cancelling Run's context.
type Service struct {
	cfg     Config
	win     *flows.Window
	col     *collector.Collector
	mux     *http.ServeMux
	started time.Time

	mu     sync.Mutex
	feeds  map[int64]*Feed
	nextID int64
	wg     sync.WaitGroup

	// Restored reports whether New loaded a checkpoint.
	Restored bool
	// RestoredFrom is the file the restore actually used — the
	// configured path, or its ".prev" rotation keep after a fallback.
	RestoredFrom string
	// CheckpointFallbacks counts restores that had to fall back to the
	// ".prev" keep because the newest checkpoint was torn or corrupt
	// (0 or 1 per process; surfaced in GET /stats).
	CheckpointFallbacks uint64
}

// Feed is one registry entry: an attached stream's identity and
// lifecycle state, as reported by GET /streams.
type Feed struct {
	// ID is the registry handle (DELETE /streams/{id}).
	ID int64 `json:"id"`
	// Kind is the transport: "dial", "file", or "conn" (inbound).
	Kind string `json:"kind"`
	// Target is the transport endpoint (address or path).
	Target string `json:"target"`
	// Vantage is the feed's tenant label, registry-level metadata for
	// multi-vantage deployments.
	Vantage string `json:"vantage,omitempty"`
	// Name is the stream's source label in the collector — checkpointed
	// dictionary state is keyed by it, so a resuming feed must reuse it.
	Name string `json:"name"`
	// Attached is when the feed joined the registry.
	Attached time.Time `json:"attached"`
	// Status is "running", "done", or "failed".
	Status string `json:"status"`
	// Error is the failure cause when Status is "failed".
	Error string `json:"error,omitempty"`

	stop func() // idempotent detach: unblocks the ingest goroutine
}

// New builds the service, restoring the window and dictionary state
// from Config.CheckpointPath if a checkpoint exists there.
func New(cfg Config) (*Service, error) {
	if cfg.Index == nil {
		return nil, errors.New("serve: Config.Index is required")
	}
	if len(cfg.Days) == 0 {
		return nil, errors.New("serve: Config.Days is required")
	}
	if cfg.WindowHours == 0 {
		cfg.WindowHours = len(cfg.Days) * 24
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	winOpts := cfg.Opts
	winOpts.SamplingRate = 1

	s := &Service{cfg: cfg, feeds: map[int64]*Feed{}, started: time.Now()}
	var dicts map[string]*collector.DictState
	if cfg.CheckpointPath != "" {
		win, ds, from, fellBack, err := restoreCheckpoint(cfg, winOpts)
		if err != nil {
			return nil, err
		}
		if win != nil {
			s.win, dicts = win, ds
			s.Restored = true
			s.RestoredFrom = from
			if fellBack {
				s.CheckpointFallbacks = 1
			}
			cfg.Logf("serve: restored window (end hour %d, %d dictionaries) from %s",
				win.End(), len(ds), from)
		}
	}
	if s.win == nil {
		win, err := flows.NewWindow(cfg.Index, cfg.Days[0], cfg.WindowHours, winOpts)
		if err != nil {
			return nil, err
		}
		s.win = win
	}
	col, err := collector.New(collector.Config{
		Index: cfg.Index, Days: cfg.Days, Opts: cfg.Opts,
		Policy: cfg.Policy, StallTimeout: cfg.StallTimeout,
		Window: s.win, RestoredDicts: dicts,
	})
	if err != nil {
		return nil, err
	}
	s.col = col
	s.buildMux()
	return s, nil
}

// restoreCheckpoint resolves startup state from the configured path:
// the newest checkpoint when it is intact, the ".prev" rotation keep
// when the newest is torn/corrupt (CRC or container failure) or went
// missing mid-rotation, and a nil window (fresh start) when no
// checkpoint exists at all. Both copies unreadable is a hard error —
// the operator asked for a restore and neither candidate is safe.
func restoreCheckpoint(cfg Config, winOpts flows.Options) (win *flows.Window, dicts map[string]*collector.DictState, from string, fellBack bool, err error) {
	path, prev := cfg.CheckpointPath, cfg.CheckpointPath+prevSuffix
	_, newestErr := os.Stat(path)
	_, prevErr := os.Stat(prev)
	if newestErr == nil {
		win, dicts, err = loadCheckpoint(path, cfg.Index, winOpts)
		if err == nil {
			return win, dicts, path, false, nil
		}
		if prevErr != nil {
			return nil, nil, "", false, fmt.Errorf("serve: restoring %s: %w", path, err)
		}
		cfg.Logf("serve: WARNING: checkpoint %s unreadable (%v); falling back to %s", path, err, prev)
	} else if prevErr == nil {
		// Crash between the rotation rename and the fresh-file rename:
		// the newest is gone but the keep survived.
		cfg.Logf("serve: WARNING: checkpoint %s missing; falling back to %s", path, prev)
	} else {
		return nil, nil, "", false, nil // fresh start
	}
	win, dicts, err = loadCheckpoint(prev, cfg.Index, winOpts)
	if err != nil {
		return nil, nil, "", false, fmt.Errorf("serve: restoring fallback %s: %w", prev, err)
	}
	return win, dicts, prev, true, nil
}

// Window exposes the service's sliding window (read-only use).
func (s *Service) Window() *flows.Window { return s.win }

// Collector exposes the underlying collector (stats, finalize).
func (s *Service) Collector() *collector.Collector { return s.col }

// register adds a feed under the next ID.
func (s *Service) register(f *Feed) *Feed {
	s.mu.Lock()
	s.nextID++
	f.ID = s.nextID
	f.Attached = time.Now()
	f.Status = "running"
	s.feeds[f.ID] = f
	s.mu.Unlock()
	return f
}

// settle records a feed's terminal state.
func (s *Service) settle(f *Feed, err error) {
	s.mu.Lock()
	if err != nil {
		f.Status = "failed"
		f.Error = err.Error()
	} else {
		f.Status = "done"
	}
	s.mu.Unlock()
	s.cfg.Logf("serve: feed %d (%s %s) %s", f.ID, f.Kind, f.Target, f.Status)
}

// AttachFile ingests a recorded framed stream from disk under the
// given source name (empty name defaults to the path — reuse the same
// name across restarts so checkpointed dictionary state re-attaches).
// It returns immediately; the feed runs until EOF or fault.
func (s *Service) AttachFile(path, name, vantage string) (*Feed, error) {
	if name == "" {
		name = path
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	f := s.register(&Feed{Kind: "file", Target: path, Name: name, Vantage: vantage,
		stop: func() { fh.Close() }})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer fh.Close()
		s.settle(f, s.col.IngestNamedStream(name, fh))
	}()
	return f, nil
}

// AttachDial connects out to a framed-stream exporter and ingests with
// reconnect-on-failure (collector.IngestReconnecting): transport deaths
// redial with backoff instead of ending the feed.
func (s *Service) AttachDial(addr, name, vantage string) (*Feed, error) {
	if name == "" {
		name = addr
	}
	var fmu sync.Mutex
	var cur net.Conn
	stopped := false
	f := s.register(&Feed{Kind: "dial", Target: addr, Name: name, Vantage: vantage,
		stop: func() {
			fmu.Lock()
			stopped = true
			if cur != nil {
				cur.Close()
			}
			fmu.Unlock()
		}})
	dial := func(attempt int) (io.Reader, error) {
		fmu.Lock()
		dead := stopped
		fmu.Unlock()
		if dead {
			return nil, net.ErrClosed
		}
		conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return nil, err
		}
		fmu.Lock()
		if stopped {
			fmu.Unlock()
			conn.Close()
			return nil, net.ErrClosed
		}
		cur = conn
		fmu.Unlock()
		return conn, nil
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.settle(f, s.col.IngestReconnecting(name, dial, collector.ReconnectConfig{
			Seed: s.cfg.ReconnectSeed,
		}))
	}()
	return f, nil
}

// Detach stops a feed: its transport is closed and the ingest stream
// winds down under the configured fault policy.
func (s *Service) Detach(id int64) error {
	s.mu.Lock()
	f, ok := s.feeds[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no feed %d", id)
	}
	f.stop()
	return nil
}

// detachAll stops every feed (shutdown path).
func (s *Service) detachAll() {
	s.mu.Lock()
	feeds := make([]*Feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.Unlock()
	for _, f := range feeds {
		f.stop()
	}
}

// ServeFeeds accepts inbound exporter connections on ln, one framed
// stream per connection, until ln is closed. Each connection joins the
// registry as a "conn" feed named by its remote address.
func (s *Service) ServeFeeds(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		remote := conn.RemoteAddr().String()
		f := s.register(&Feed{Kind: "conn", Target: remote, Name: remote,
			stop: func() { conn.Close() }})
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.settle(f, s.col.IngestNamedStream(remote, conn))
		}()
	}
}

// Checkpoint writes the window and dictionary state atomically to
// Config.CheckpointPath and returns the byte size written.
func (s *Service) Checkpoint() (int64, error) {
	if s.cfg.CheckpointPath == "" {
		return 0, errors.New("serve: no checkpoint path configured")
	}
	n, err := writeCheckpoint(s.cfg.CheckpointPath, s.win, s.col.DictStates())
	if err == nil {
		s.cfg.Logf("serve: checkpoint %s (%d bytes)", s.cfg.CheckpointPath, n)
	}
	return n, err
}

// Run drives the service: HTTP API on httpLn, optional inbound feeds
// on feedLn (nil disables), checkpoints on the configured timer. When
// ctx is cancelled Run stops accepting, detaches every feed, waits for
// in-flight streams to drain, writes a final checkpoint, and returns.
func (s *Service) Run(ctx context.Context, httpLn net.Listener, feedLn net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(httpLn) }()
	if feedLn != nil {
		go s.ServeFeeds(feedLn)
	}
	var tick <-chan time.Time
	if s.cfg.CheckpointEvery > 0 && s.cfg.CheckpointPath != "" {
		t := time.NewTicker(s.cfg.CheckpointEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			if _, err := s.Checkpoint(); err != nil {
				s.cfg.Logf("serve: checkpoint failed: %v", err)
			}
		case err := <-httpErr:
			return err
		case <-ctx.Done():
			if feedLn != nil {
				feedLn.Close()
			}
			s.detachAll()
			s.wg.Wait()
			var err error
			if s.cfg.CheckpointPath != "" {
				_, err = s.Checkpoint()
			}
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(sctx) //nolint:errcheck // best-effort drain
			return err
		}
	}
}

// Handler returns the HTTP API (for tests and custom servers).
func (s *Service) Handler() http.Handler { return s.mux }

func (s *Service) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /streams", s.handleStreams)
	mux.HandleFunc("GET /window", s.handleWindow)
	mux.HandleFunc("GET /figures", s.handleFigures)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /streams/file", s.handleAttachFile)
	mux.HandleFunc("POST /streams/dial", s.handleAttachDial)
	mux.HandleFunc("DELETE /streams/{id}", s.handleDetach)
	if s.cfg.EnablePprof {
		// net/http/pprof registers on DefaultServeMux as a side effect
		// of its import; mount its handlers here explicitly so they are
		// only reachable when the deployment asked for them.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
}

// handleHealthz is the liveness probe: a cheap 200 that touches the
// window's atomics but takes no locks, so a stalled fold or a wedged
// stream cannot make the probe itself hang.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":  "ok",
		"started": s.started,
		"uptime":  time.Since(s.started).String(),
		"endHour": s.win.End(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	start, end := s.win.Span()
	writeJSON(w, map[string]any{
		"started":             s.started,
		"restored":            s.Restored,
		"restoredFrom":        s.RestoredFrom,
		"checkpointFallbacks": s.CheckpointFallbacks,
		"windowStart":         start,
		"windowEnd":           end,
		"window":              s.win.Stats(),
		"wire":                s.col.Stats(),
	})
}

func (s *Service) handleStreams(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	feeds := make([]*Feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.Unlock()
	sort.Slice(feeds, func(i, j int) bool { return feeds[i].ID < feeds[j].ID })
	writeJSON(w, map[string]any{
		"feeds":   feeds,
		"streams": s.col.StreamStats(),
	})
}

func (s *Service) handleWindow(w http.ResponseWriter, r *http.Request) {
	start, end := s.win.Span()
	writeJSON(w, map[string]any{
		"epoch":    s.win.Epoch(),
		"hours":    s.win.Hours(),
		"start":    start,
		"end":      end,
		"stats":    s.win.Stats(),
		"buckets":  s.win.BucketStats(),
		"vantages": s.vantageCoverage(),
	})
}

// vantageWindow is one vantage's feed-coverage row in GET /window.
type vantageWindow struct {
	Vantage      string `json:"vantage"`
	Streams      int    `json:"streams"`
	HoursCovered int    `json:"hoursCovered"`
	HoursTotal   int    `json:"hoursTotal"`
	// Degraded flags a vantage whose settled feeds missed study hours
	// that some other vantage's feeds covered — the same bitset
	// algebra flows.Federation.Coverage() runs at batch scale, here
	// over the collector's per-stream liveness bitsets.
	Degraded bool `json:"degraded"`
}

// vantageCoverage groups settled streams by their registry vantage
// label and runs the cross-vantage hour-coverage comparison: a feed
// that died mid-week leaves its vantage short of hours its siblings
// covered, which is exactly what "degraded" means federation-wide.
// Feeds still running have no settled liveness bitset yet and are
// counted once they finish.
func (s *Service) vantageCoverage() []vantageWindow {
	vantageOf := map[string]string{}
	s.mu.Lock()
	for _, f := range s.feeds {
		vantageOf[f.Name] = f.Vantage
	}
	s.mu.Unlock()
	type agg struct {
		bits    []uint64
		streams int
		total   int
	}
	perVantage := map[string]*agg{}
	var union []uint64
	or := func(dst *[]uint64, bits []uint64) {
		for len(*dst) < len(bits) {
			*dst = append(*dst, 0)
		}
		for i, w := range bits {
			(*dst)[i] |= w
		}
	}
	for _, ss := range s.col.StreamStats() {
		v := vantageOf[ss.Source]
		if v == "" {
			v = ss.Vantage
		}
		a := perVantage[v]
		if a == nil {
			a = &agg{}
			perVantage[v] = a
		}
		a.streams++
		if ss.HoursTotal > a.total {
			a.total = ss.HoursTotal
		}
		or(&a.bits, ss.HourBits)
		or(&union, ss.HourBits)
	}
	names := make([]string, 0, len(perVantage))
	for v := range perVantage {
		names = append(names, v)
	}
	sort.Strings(names)
	out := make([]vantageWindow, 0, len(names))
	for _, v := range names {
		a := perVantage[v]
		covered, missing := 0, false
		for i, w := range union {
			var own uint64
			if i < len(a.bits) {
				own = a.bits[i]
			}
			covered += bits.OnesCount64(own)
			if w&^own != 0 {
				missing = true
			}
		}
		out = append(out, vantageWindow{
			Vantage: v, Streams: a.streams,
			HoursCovered: covered, HoursTotal: a.total,
			Degraded: missing,
		})
	}
	return out
}

// figuresJSON is the machine-readable study summary for
// GET /figures?format=json.
type figuresJSON struct {
	Start        time.Time          `json:"start"`
	End          time.Time          `json:"end"`
	Hours        int                `json:"hours"`
	ScannerCurve []flows.CurvePoint `json:"scannerCurve"`
	Aliases      []aliasJSON        `json:"aliases"`
}

// aliasJSON is one backend provider's summary row.
type aliasJSON struct {
	Alias         string  `json:"alias"`
	DownstreamGB  float64 `json:"downstreamGB"`
	UpstreamGB    float64 `json:"upstreamGB"`
	VisibilityV4  float64 `json:"visibilityV4Pct"`
	VisibilityV6  float64 `json:"visibilityV6Pct"`
	ActiveLineSum float64 `json:"activeLineSum"`
}

func (s *Service) handleFigures(w http.ResponseWriter, r *http.Request) {
	cc, col := s.col.Finalize()
	if r.URL.Query().Get("format") != "json" && s.cfg.RenderFigures != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.cfg.RenderFigures(cc, col))
		return
	}
	study := col.Study()
	start, end := s.win.Span()
	out := figuresJSON{
		Start: start, End: end, Hours: study.Hours(),
		ScannerCurve: cc.Curve([]int{10, 50, 100, 500, 1000}),
	}
	for _, alias := range study.Aliases() {
		v4, v6 := study.Visibility(alias)
		out.Aliases = append(out.Aliases, aliasJSON{
			Alias:         alias,
			DownstreamGB:  study.Downstream(alias).Total() / 1e9,
			UpstreamGB:    study.Upstream(alias).Total() / 1e9,
			VisibilityV4:  v4,
			VisibilityV6:  v6,
			ActiveLineSum: study.ActiveLines(alias).Total(),
		})
	}
	writeJSON(w, out)
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	n, err := s.Checkpoint()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"path": s.cfg.CheckpointPath, "bytes": n})
}

// attachReq is the POST /streams/{file,dial} request body.
type attachReq struct {
	Path    string `json:"path"`
	Addr    string `json:"addr"`
	Name    string `json:"name"`
	Vantage string `json:"vantage"`
}

func decodeAttach(w http.ResponseWriter, r *http.Request) (attachReq, bool) {
	var req attachReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return req, false
	}
	return req, true
}

func (s *Service) handleAttachFile(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAttach(w, r)
	if !ok {
		return
	}
	if req.Path == "" {
		http.Error(w, `"path" is required`, http.StatusBadRequest)
		return
	}
	f, err := s.AttachFile(req.Path, req.Name, req.Vantage)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, f)
}

func (s *Service) handleAttachDial(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeAttach(w, r)
	if !ok {
		return
	}
	if req.Addr == "" {
		http.Error(w, `"addr" is required`, http.StatusBadRequest)
		return
	}
	f, err := s.AttachDial(req.Addr, req.Name, req.Vantage)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, f)
}

func (s *Service) handleDetach(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad feed id", http.StatusBadRequest)
		return
	}
	if err := s.Detach(id); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"detached": id})
}
