package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iotmap/internal/collector"
	"iotmap/internal/core/flows"
	"iotmap/internal/isp"
	"iotmap/internal/netflow"
	"iotmap/internal/world"
)

// fixture is the serve-level test world: an index, a study frame, and
// one recorded dictionary-format stream.
type fixture struct {
	idx  *flows.BackendIndex
	days []time.Time
	opts flows.Options
	rec  []byte
}

func buildFixture(t testing.TB) *fixture {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 23, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	n, err := isp.NewNetwork(isp.Config{Seed: 23, Lines: 300}, w)
	if err != nil {
		t.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	var rec bytes.Buffer
	if _, err := n.SimulateLinesToWireFormat([]io.Writer{&rec}, 0, isp.WireDict); err != nil {
		t.Fatal(err)
	}
	return &fixture{idx: idx, days: w.Days, rec: rec.Bytes(), opts: flows.Options{
		ScannerThreshold: 100,
		SamplingRate:     n.Cfg.SamplingRate,
		FocusAlias:       "T1",
		FocusRegion:      "us-east-1",
	}}
}

// renderFigures is a deterministic text rendering standing in for the
// real figures package (which needs the full System); byte equality of
// this output across a kill-resume is the restore-correctness check.
func renderFigures(cc *flows.ContactCounter, col *flows.Collector) string {
	study := col.Study()
	var b strings.Builder
	for _, p := range cc.Curve([]int{10, 100, 1000}) {
		fmt.Fprintf(&b, "curve %d: %d scanners %.4f%%\n", p.Threshold, p.Scanners, p.CoveragePct)
	}
	for _, alias := range study.Aliases() {
		v4, v6 := study.Visibility(alias)
		fmt.Fprintf(&b, "%s: down %.0f up %.0f lines %.0f vis %.2f/%.2f\n",
			alias, study.Downstream(alias).Total(), study.Upstream(alias).Total(),
			study.ActiveLines(alias).Total(), v4, v6)
	}
	return b.String()
}

func (f *fixture) service(t testing.TB, ckpt string) *Service {
	t.Helper()
	s, err := New(Config{
		Index: f.idx, Days: f.days, Opts: f.opts,
		Policy: collector.DropFrame, CheckpointPath: ckpt,
		RenderFigures: renderFigures,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get fetches a path from the test server and returns the body.
func get(t testing.TB, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// waitSettled polls /streams until every feed has left "running".
func waitSettled(t testing.TB, srv *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var out struct {
			Feeds []Feed `json:"feeds"`
		}
		if err := json.Unmarshal([]byte(get(t, srv, "/streams")), &out); err != nil {
			t.Fatal(err)
		}
		running := false
		for _, f := range out.Feeds {
			if f.Status == "running" {
				running = true
			}
			if f.Status == "failed" {
				t.Fatalf("feed %d failed: %s", f.ID, f.Error)
			}
		}
		if !running && len(out.Feeds) > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("feeds never settled")
}

// TestServiceEndpoints drives the HTTP API end to end: attach a
// recorded file, watch it complete, read the live figures in both
// renderings, checkpoint on demand, and detach-404 on a bogus ID.
func TestServiceEndpoints(t *testing.T) {
	f := buildFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "feed.nf")
	if err := os.WriteFile(path, f.rec, 0o644); err != nil {
		t.Fatal(err)
	}
	s := f.service(t, filepath.Join(dir, "ckpt"))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"path":` + jsonStr(path) + `,"name":"feed","vantage":"isp-a"}`
	resp, err := srv.Client().Post(srv.URL+"/streams/file", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach: %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitSettled(t, srv)

	figs := get(t, srv, "/figures")
	if !strings.Contains(figs, "curve") || !strings.Contains(figs, "down") {
		t.Fatalf("figures text incomplete:\n%s", figs)
	}
	var jf figuresJSON
	if err := json.Unmarshal([]byte(get(t, srv, "/figures?format=json")), &jf); err != nil {
		t.Fatal(err)
	}
	if len(jf.Aliases) == 0 || len(jf.ScannerCurve) == 0 {
		t.Fatalf("figures JSON empty: %+v", jf)
	}
	var stats struct {
		Wire collector.Stats `json:"wire"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Wire.BatchRecords == 0 {
		t.Fatalf("no batch records counted: %+v", stats.Wire)
	}
	var win struct {
		Buckets []flows.BucketStat `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/window")), &win); err != nil {
		t.Fatal(err)
	}
	if len(win.Buckets) == 0 {
		t.Fatal("no live window buckets")
	}

	resp, err = srv.Client().Post(srv.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt")); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/streams/99", nil)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("detach bogus feed: %d, want 404", resp.StatusCode)
	}
}

// jsonStr JSON-quotes a string (paths may contain backslashes).
func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestHealthzAndPprof: /healthz answers on every service; /debug/pprof/
// is 404 unless Config.EnablePprof opted in.
func TestHealthzAndPprof(t *testing.T) {
	f := buildFixture(t)
	s := f.service(t, "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var hz struct {
		Status  string `json:"status"`
		EndHour int64  `json:"endHour"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/healthz")), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", hz.Status)
	}
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: %d, want 404", resp.StatusCode)
	}

	sp, err := New(Config{
		Index: f.idx, Days: f.days, Opts: f.opts,
		Policy: collector.DropFrame, RenderFigures: renderFigures,
		EnablePprof: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(sp.Handler())
	defer psrv.Close()
	if body := get(t, psrv, "/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
	if !strings.Contains(get(t, psrv, "/debug/pprof/"), "goroutine") {
		t.Fatal("pprof index incomplete")
	}
}

// TestServeFeedsTCP: an exporter dialing the feed listener is ingested
// as a registry "conn" feed.
func TestServeFeedsTCP(t *testing.T) {
	f := buildFixture(t)
	s := f.service(t, "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeFeeds(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(f.rec); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitSettled(t, srv)

	if got := renderFigures(s.col.Finalize()); !strings.Contains(got, "down") {
		t.Fatalf("figures empty after TCP feed:\n%s", got)
	}
}

// splitAtFlush cuts a recorded stream after the flush frame nearest the
// midpoint, producing two independently valid streams (flush frames
// delimit line batches, so classification is unaffected by the cut).
func splitAtFlush(t testing.TB, data []byte) (partA, partB []byte) {
	t.Helper()
	total := 0
	fr := netflow.NewFrameReader(bytes.NewReader(data))
	for {
		fme, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if fme.Type == netflow.FrameFlush {
			total++
		}
	}
	if total < 2 {
		t.Fatalf("stream has %d flush frames; cannot split", total)
	}
	var a, b bytes.Buffer
	wa, wb := netflow.NewFrameWriter(&a), netflow.NewFrameWriter(&b)
	seen := 0
	fr = netflow.NewFrameReader(bytes.NewReader(data))
	for {
		fme, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		w := wa
		if seen >= total/2 {
			w = wb
		}
		if err := w.WriteFrame(fme.Type, fme.Payload); err != nil {
			t.Fatal(err)
		}
		if fme.Type == netflow.FrameFlush {
			seen++
		}
	}
	return a.Bytes(), b.Bytes()
}

// TestServiceKillResume is the daemon-level acceptance property: a feed
// cut at a flush boundary, ingested half by service 1 (which then shuts
// down, checkpointing), half by a restarted service 2 (which restores),
// yields /figures byte-identical to one uninterrupted service.
func TestServiceKillResume(t *testing.T) {
	f := buildFixture(t)
	dir := t.TempDir()
	partA, partB := splitAtFlush(t, f.rec)
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	full := write("full.nf", f.rec)
	pa := write("a.nf", partA)
	pb := write("b.nf", partB)
	ckpt := filepath.Join(dir, "ckpt")

	// runService drives one service lifetime over Run (real listener,
	// final checkpoint on cancel) and returns its /figures text.
	runService := func(ckptPath string, feedPath string, wantRestored bool) string {
		s := f.service(t, ckptPath)
		if s.Restored != wantRestored {
			t.Fatalf("Restored = %v, want %v", s.Restored, wantRestored)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- s.Run(ctx, ln, nil) }()
		base := "http://" + ln.Addr().String()
		cl := &http.Client{Timeout: 10 * time.Second}
		post := func(path, body string) {
			resp, err := cl.Post(base+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST %s: %d", path, resp.StatusCode)
			}
		}
		post("/streams/file", `{"path":`+jsonStr(feedPath)+`,"name":"feed"}`)
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatal("feed never settled")
			}
			resp, err := cl.Get(base + "/streams")
			if err != nil {
				t.Fatal(err)
			}
			var out struct {
				Feeds []Feed `json:"feeds"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Feeds) == 1 && out.Feeds[0].Status == "done" {
				break
			}
			if len(out.Feeds) == 1 && out.Feeds[0].Status == "failed" {
				t.Fatalf("feed failed: %s", out.Feeds[0].Error)
			}
			time.Sleep(10 * time.Millisecond)
		}
		resp, err := cl.Get(base + "/figures")
		if err != nil {
			t.Fatal(err)
		}
		figs, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		return string(figs)
	}

	ref := runService(filepath.Join(dir, "ckpt-ref"), full, false)
	runService(ckpt, pa, false)
	resumed := runService(ckpt, pb, true)
	if resumed != ref {
		t.Fatalf("resumed figures differ from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", ref, resumed)
	}
}
