package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iotmap/internal/collector"
	"iotmap/internal/core/flows"
	"iotmap/internal/faultwire"
	"iotmap/internal/isp"
	"iotmap/internal/world"
)

// attachFileHTTP attaches a recorded file feed over the API.
func attachFileHTTP(t testing.TB, srv *httptest.Server, path, name, vantage string) {
	t.Helper()
	body := `{"path":` + jsonStr(path) + `,"name":` + jsonStr(name) + `,"vantage":` + jsonStr(vantage) + `}`
	resp, err := srv.Client().Post(srv.URL+"/streams/file", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("attach %s: %d", path, resp.StatusCode)
	}
}

func postCheckpoint(t testing.TB, srv *httptest.Server) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
}

// TestCheckpointCRCFallback: a torn/corrupt newest checkpoint must not
// take the daemon down — restore falls back to the ".prev" rotation
// keep with a warning and a counter bump, and the restored figures
// match the state both checkpoints captured.
func TestCheckpointCRCFallback(t *testing.T) {
	f := buildFixture(t)
	dir := t.TempDir()
	feed := filepath.Join(dir, "feed.nf")
	if err := os.WriteFile(feed, f.rec, 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "ckpt")

	s1 := f.service(t, ckpt)
	srv := httptest.NewServer(s1.Handler())
	attachFileHTTP(t, srv, feed, "feed", "isp-a")
	waitSettled(t, srv)
	figs := get(t, srv, "/figures")
	// Two checkpoints of the same settled state: the rotation keep and
	// the newest file are equivalent restore points.
	postCheckpoint(t, srv)
	postCheckpoint(t, srv)
	srv.Close()
	if _, err := os.Stat(ckpt + prevSuffix); err != nil {
		t.Fatalf("rotation keep missing: %v", err)
	}

	// Corrupt the newest checkpoint's tail — a torn write.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warned bool
	s2, err := New(Config{
		Index: f.idx, Days: f.days, Opts: f.opts,
		Policy: collector.DropFrame, CheckpointPath: ckpt,
		RenderFigures: renderFigures,
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "WARNING") {
				warned = true
			}
		},
	})
	if err != nil {
		t.Fatalf("restore with intact .prev failed: %v", err)
	}
	if !s2.Restored {
		t.Fatal("service did not restore")
	}
	if s2.RestoredFrom != ckpt+prevSuffix {
		t.Fatalf("RestoredFrom = %q, want %q", s2.RestoredFrom, ckpt+prevSuffix)
	}
	if s2.CheckpointFallbacks != 1 {
		t.Fatalf("CheckpointFallbacks = %d, want 1", s2.CheckpointFallbacks)
	}
	if !warned {
		t.Fatal("fallback restore logged no warning")
	}
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	if got := get(t, srv2, "/figures"); got != figs {
		t.Fatalf("fallback figures differ:\n--- before\n%s\n--- after\n%s", figs, got)
	}
	var stats struct {
		Fallbacks uint64 `json:"checkpointFallbacks"`
		From      string `json:"restoredFrom"`
	}
	if err := json.Unmarshal([]byte(get(t, srv2, "/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks != 1 || stats.From != ckpt+prevSuffix {
		t.Fatalf("stats fallback fields wrong: %+v", stats)
	}

	// A newest file that vanished mid-rotation falls back the same way.
	if err := os.Remove(ckpt); err != nil {
		t.Fatal(err)
	}
	s3 := f.service(t, ckpt)
	if !s3.Restored || s3.CheckpointFallbacks != 1 || s3.RestoredFrom != ckpt+prevSuffix {
		t.Fatalf("mid-rotation fallback wrong: restored=%v fallbacks=%d from=%q",
			s3.Restored, s3.CheckpointFallbacks, s3.RestoredFrom)
	}

	// Both copies unreadable is a hard error, not a silent fresh start.
	if err := os.WriteFile(ckpt, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt+prevSuffix, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{
		Index: f.idx, Days: f.days, Opts: f.opts,
		Policy: collector.DropFrame, CheckpointPath: ckpt,
		RenderFigures: renderFigures,
	}); err == nil {
		t.Fatal("restore with both copies corrupt did not fail")
	}
}

// TestCheckpointV1ReadCompat: a version-1 container ("IOTCKPT1",
// 8-byte section headers, no CRC) still restores — the format bump is
// backward compatible one version out.
func TestCheckpointV1ReadCompat(t *testing.T) {
	f := buildFixture(t)
	dir := t.TempDir()
	feed := filepath.Join(dir, "feed.nf")
	if err := os.WriteFile(feed, f.rec, 0o644); err != nil {
		t.Fatal(err)
	}
	s1 := f.service(t, filepath.Join(dir, "unused"))
	srv := httptest.NewServer(s1.Handler())
	attachFileHTTP(t, srv, feed, "feed", "isp-a")
	waitSettled(t, srv)
	figs := get(t, srv, "/figures")
	srv.Close()

	// Hand-write the v1 container from the live state.
	var buf bytes.Buffer
	buf.WriteString(checkpointMagicV1)
	putV1 := func(tag string, body []byte) {
		buf.WriteString(tag)
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
		buf.Write(ln[:])
		buf.Write(body)
	}
	var sec bytes.Buffer
	if err := flows.Snapshot(&sec, s1.win); err != nil {
		t.Fatal(err)
	}
	putV1(sectionWindow, sec.Bytes())
	sec.Reset()
	if err := encodeDicts(&sec, s1.col.DictStates()); err != nil {
		t.Fatal(err)
	}
	putV1(sectionDicts, sec.Bytes())
	ckpt := filepath.Join(dir, "ckpt-v1")
	if err := os.WriteFile(ckpt, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := f.service(t, ckpt)
	if !s2.Restored || s2.CheckpointFallbacks != 0 || s2.RestoredFrom != ckpt {
		t.Fatalf("v1 restore wrong: restored=%v fallbacks=%d from=%q",
			s2.Restored, s2.CheckpointFallbacks, s2.RestoredFrom)
	}
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	if got := get(t, srv2, "/figures"); got != figs {
		t.Fatalf("v1 restore figures differ:\n--- v2 service\n%s\n--- v1 restore\n%s", figs, got)
	}
}

// TestWindowVantageDegraded: GET /window groups settled feeds by
// vantage and flags a vantage whose feeds missed study hours a sibling
// vantage covered — the daemon-side twin of the federation coverage
// report's degraded annotation.
func TestWindowVantageDegraded(t *testing.T) {
	// The hour-coverage comparison needs the v5 encoding: fault rules
	// and liveness both clock hours from v5 frame headers.
	w, err := world.Build(world.Config{Seed: 23, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	n, err := isp.NewNetwork(isp.Config{Seed: 23, Lines: 300}, w)
	if err != nil {
		t.Fatal(err)
	}
	f := buildFixture(t)
	var rec5 bytes.Buffer
	if _, err := n.SimulateLinesToWireFormat([]io.Writer{&rec5}, 0, isp.WireV5); err != nil {
		t.Fatal(err)
	}
	// isp-b's copy of the feed dies cleanly at hour 96 — the exporter
	// sat inside the blast radius.
	sc := &faultwire.Scenario{Seed: 1, Start: w.Days[0], Rules: []faultwire.Rule{
		{Stream: -1, FromHour: 96, Faults: faultwire.Faults{Kill: true, KillClean: true}},
	}}
	dead, err := io.ReadAll(sc.Wrap(0, "isp-b", bytes.NewReader(rec5.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) == 0 || len(dead) >= rec5.Len() {
		t.Fatalf("feed death produced %d of %d bytes", len(dead), rec5.Len())
	}

	dir := t.TempDir()
	healthy := filepath.Join(dir, "healthy.nf")
	truncated := filepath.Join(dir, "dead.nf")
	if err := os.WriteFile(healthy, rec5.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, dead, 0o644); err != nil {
		t.Fatal(err)
	}

	s := f.service(t, "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	attachFileHTTP(t, srv, healthy, "feed-a", "isp-a")
	attachFileHTTP(t, srv, truncated, "feed-b", "isp-b")
	waitSettled(t, srv)

	var win struct {
		Vantages []vantageWindow `json:"vantages"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/window")), &win); err != nil {
		t.Fatal(err)
	}
	if len(win.Vantages) != 2 {
		t.Fatalf("vantages = %+v, want 2 rows", win.Vantages)
	}
	rows := map[string]vantageWindow{}
	for _, v := range win.Vantages {
		rows[v.Vantage] = v
	}
	a, b := rows["isp-a"], rows["isp-b"]
	if a.Vantage == "" || b.Vantage == "" {
		t.Fatalf("vantage rows missing: %+v", win.Vantages)
	}
	if a.Degraded {
		t.Fatalf("healthy vantage flagged degraded: %+v", a)
	}
	if !b.Degraded {
		t.Fatalf("vantage that lost its feed not flagged degraded: %+v", b)
	}
	if b.HoursCovered >= a.HoursCovered {
		t.Fatalf("dead feed covers %d hours, healthy %d", b.HoursCovered, a.HoursCovered)
	}
}

// TestAttachDialReconnects: a dial feed whose transport dies with an
// error redials through collector.IngestReconnecting and finishes the
// stream — the daemon survives a flapping exporter without operator
// action.
func TestAttachDialReconnects(t *testing.T) {
	f := buildFixture(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		// First connection: reset with no data (a dying exporter).
		c1, err := ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := c1.(*net.TCPConn); ok {
			tc.SetLinger(0) //nolint:errcheck
		}
		c1.Close()
		// Second connection: the full recording.
		c2, err := ln.Accept()
		if err != nil {
			return
		}
		c2.Write(f.rec) //nolint:errcheck
		c2.Close()
	}()

	s := f.service(t, "")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, err := s.AttachDial(ln.Addr().String(), "flappy", "isp-a"); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, srv)

	var stats struct {
		Wire collector.Stats `json:"wire"`
	}
	if err := json.Unmarshal([]byte(get(t, srv, "/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Wire.Reconnects == 0 {
		t.Fatalf("no reconnects counted: %+v", stats.Wire)
	}
	if stats.Wire.BatchRecords == 0 {
		t.Fatalf("reconnected feed ingested nothing: %+v", stats.Wire)
	}
}
