package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"iotmap/internal/collector"
	"iotmap/internal/core/flows"
)

// Checkpoint container: a magic header followed by tagged,
// length-prefixed, checksummed sections, so the window snapshot and
// each stream's dictionary state stay independently framed (and future
// sections can be added without breaking old readers that skip unknown
// tags).
//
//	"IOTCKPT2"                               8-byte magic (version in the tag)
//	"WIN0" u32-len u32-crc  flows.Snapshot   the sliding window
//	"DCT0" u32-len u32-crc  dictionary bundle all retained DictStates
//
// The per-section CRC32 (IEEE, over the section body only) is the
// torn-write detector: a checkpoint that lost its tail in a crash — or
// had a sector go bad underneath it — fails closed at restore instead
// of resurrecting a half-window. Version 1 ("IOTCKPT1") containers lack
// the CRC field and are still readable (trusted as-is, as they always
// were); writers only emit version 2.
//
// The dictionary bundle is itself length-prefixed per entry: source
// label, exporter epoch, advertised rate, the per-entry address
// families, and the flows.WireTables snapshot. Everything is
// little-endian, matching the flows snapshot codec.
const (
	checkpointMagic   = "IOTCKPT2"
	checkpointMagicV1 = "IOTCKPT1"
	sectionWindow     = "WIN0"
	sectionDicts      = "DCT0"
	// maxSectionBytes bounds one section (and any length field inside
	// the dictionary bundle) against a corrupt header allocating GBs.
	maxSectionBytes = 1 << 31
	// prevSuffix is the rotation keep: the previous checkpoint survives
	// as path+prevSuffix so a torn newest file is not the end of the
	// line at restore time.
	prevSuffix = ".prev"
)

// writeCheckpoint atomically persists the window and dictionary state:
// the container is written to a temp file in the destination directory,
// synced, then renamed over path — a crash mid-write leaves the
// previous checkpoint intact. Before the final rename an existing
// checkpoint rotates to path+".prev", so restore always has a
// known-good fallback one generation back.
func writeCheckpoint(path string, win *flows.Window, dicts map[string]*collector.DictState) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	n, err := writeContainer(bw, win, dicts)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	if _, err := os.Stat(path); err == nil {
		// Rotation is best-effort: a failed rename (exotic filesystems)
		// must not block the fresh checkpoint from landing.
		os.Rename(path, path+prevSuffix) //nolint:errcheck
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return n, nil
}

func writeContainer(dst io.Writer, win *flows.Window, dicts map[string]*collector.DictState) (int64, error) {
	var total int64
	put := func(b []byte) error {
		n, err := dst.Write(b)
		total += int64(n)
		return err
	}
	if err := put([]byte(checkpointMagic)); err != nil {
		return total, err
	}

	var sec bytes.Buffer
	if err := flows.Snapshot(&sec, win); err != nil {
		return total, err
	}
	if err := putSection(put, sectionWindow, sec.Bytes()); err != nil {
		return total, err
	}

	sec.Reset()
	if err := encodeDicts(&sec, dicts); err != nil {
		return total, err
	}
	if err := putSection(put, sectionDicts, sec.Bytes()); err != nil {
		return total, err
	}
	return total, nil
}

func putSection(put func([]byte) error, tag string, body []byte) error {
	if err := put([]byte(tag)); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if err := put(hdr[:]); err != nil {
		return err
	}
	return put(body)
}

// encodeDicts serializes the dictionary bundle in sorted source order,
// so back-to-back checkpoints of identical state are byte-identical.
func encodeDicts(dst *bytes.Buffer, dicts map[string]*collector.DictState) error {
	srcs := make([]string, 0, len(dicts))
	for src := range dicts {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		dst.Write(b[:])
	}
	putBytes := func(b []byte) {
		putU32(uint32(len(b)))
		dst.Write(b)
	}
	putBools := func(v []bool) {
		b := make([]byte, len(v))
		for i, x := range v {
			if x {
				b[i] = 1
			}
		}
		putBytes(b)
	}
	putU32(uint32(len(dicts)))
	for _, src := range srcs {
		ds := dicts[src]
		putBytes([]byte(src))
		var e [8]byte
		binary.LittleEndian.PutUint64(e[:], uint64(ds.Epoch))
		dst.Write(e[:])
		putU32(ds.Rate)
		putBools(ds.LineV4)
		putBools(ds.BackV4)
		var tab bytes.Buffer
		if err := ds.Tables.Snapshot(&tab); err != nil {
			return err
		}
		putBytes(tab.Bytes())
	}
	return nil
}

// loadCheckpoint restores a checkpoint container against the given
// index and window options: the window section is mandatory, the
// dictionary section optional (old or dict-less checkpoints), and
// unknown section tags are skipped. Version 2 sections are CRC32-
// verified; version 1 containers (no CRC field) restore as before.
func loadCheckpoint(path string, idx *flows.BackendIndex, winOpts flows.Options) (*flows.Window, map[string]*collector.DictState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(checkpointMagic) {
		return nil, nil, fmt.Errorf("serve: %s is not a checkpoint (too short)", path)
	}
	var withCRC bool
	switch string(data[:len(checkpointMagic)]) {
	case checkpointMagic:
		withCRC = true
	case checkpointMagicV1:
		withCRC = false
	default:
		return nil, nil, fmt.Errorf("serve: %s is not a checkpoint (bad magic)", path)
	}
	rest := data[len(checkpointMagic):]
	hdrLen := 8
	if withCRC {
		hdrLen = 12
	}
	var win *flows.Window
	var winBuf []byte
	var dictBuf []byte
	for len(rest) > 0 {
		if len(rest) < hdrLen {
			return nil, nil, fmt.Errorf("serve: truncated section header")
		}
		tag := string(rest[:4])
		ln := binary.LittleEndian.Uint32(rest[4:8])
		if uint64(ln) > maxSectionBytes || uint64(ln) > uint64(len(rest)-hdrLen) {
			return nil, nil, fmt.Errorf("serve: section %q claims %d bytes, %d remain", tag, ln, len(rest)-hdrLen)
		}
		body := rest[hdrLen : hdrLen+int(ln)]
		if withCRC {
			want := binary.LittleEndian.Uint32(rest[8:12])
			if got := crc32.ChecksumIEEE(body); got != want {
				return nil, nil, fmt.Errorf("serve: section %q CRC mismatch (got %08x, want %08x)", tag, got, want)
			}
		}
		rest = rest[hdrLen+int(ln):]
		switch tag {
		case sectionWindow:
			winBuf = body
		case sectionDicts:
			dictBuf = body
		}
	}
	if winBuf == nil {
		return nil, nil, fmt.Errorf("serve: checkpoint has no window section")
	}
	win, err = flows.Restore(bytes.NewReader(winBuf), idx, winOpts)
	if err != nil {
		return nil, nil, err
	}
	dicts := map[string]*collector.DictState{}
	if dictBuf != nil {
		if dicts, err = decodeDicts(dictBuf, win); err != nil {
			return nil, nil, err
		}
	}
	return win, dicts, nil
}

func decodeDicts(buf []byte, win *flows.Window) (map[string]*collector.DictState, error) {
	r := bytes.NewReader(buf)
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	getBytes := func() ([]byte, error) {
		n, err := getU32()
		if err != nil {
			return nil, err
		}
		if uint64(n) > uint64(r.Len()) {
			return nil, fmt.Errorf("serve: dictionary bundle field claims %d bytes, %d remain", n, r.Len())
		}
		b := make([]byte, n)
		_, err = io.ReadFull(r, b)
		return b, err
	}
	getBools := func() ([]bool, error) {
		b, err := getBytes()
		if err != nil {
			return nil, err
		}
		v := make([]bool, len(b))
		for i, x := range b {
			v[i] = x != 0
		}
		return v, nil
	}
	count, err := getU32()
	if err != nil {
		return nil, err
	}
	if uint64(count) > uint64(r.Len()) { // each entry is > 1 byte
		return nil, fmt.Errorf("serve: dictionary bundle claims %d entries, %d bytes remain", count, r.Len())
	}
	dicts := make(map[string]*collector.DictState, count)
	for i := uint32(0); i < count; i++ {
		src, err := getBytes()
		if err != nil {
			return nil, err
		}
		var e [8]byte
		if _, err := io.ReadFull(r, e[:]); err != nil {
			return nil, err
		}
		epoch := int64(binary.LittleEndian.Uint64(e[:]))
		rate, err := getU32()
		if err != nil {
			return nil, err
		}
		lineV4, err := getBools()
		if err != nil {
			return nil, err
		}
		backV4, err := getBools()
		if err != nil {
			return nil, err
		}
		tabBuf, err := getBytes()
		if err != nil {
			return nil, err
		}
		tables, err := flows.RestoreWireTables(bytes.NewReader(tabBuf), win)
		if err != nil {
			return nil, fmt.Errorf("serve: dictionary %q: %w", src, err)
		}
		dicts[string(src)] = &collector.DictState{
			Source: string(src), Epoch: epoch, Rate: rate,
			Tables: tables, LineV4: lineV4, BackV4: backV4,
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes after dictionary bundle", r.Len())
	}
	return dicts, nil
}
