package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"iotmap/internal/collector"
	"iotmap/internal/core/flows"
)

// Checkpoint container: a magic header followed by tagged,
// length-prefixed sections, so the window snapshot and each stream's
// dictionary state stay independently framed (and future sections can
// be added without breaking old readers that skip unknown tags).
//
//	"IOTCKPT1"                          8-byte magic (version in the tag)
//	"WIN0" u32-len  flows.Snapshot      the sliding window
//	"DCT0" u32-len  dictionary bundle   all retained DictStates
//
// The dictionary bundle is itself length-prefixed per entry: source
// label, exporter epoch, advertised rate, the per-entry address
// families, and the flows.WireTables snapshot. Everything is
// little-endian, matching the flows snapshot codec.
const (
	checkpointMagic = "IOTCKPT1"
	sectionWindow   = "WIN0"
	sectionDicts    = "DCT0"
	// maxSectionBytes bounds one section (and any length field inside
	// the dictionary bundle) against a corrupt header allocating GBs.
	maxSectionBytes = 1 << 31
)

// writeCheckpoint atomically persists the window and dictionary state:
// the container is written to a temp file in the destination directory,
// synced, then renamed over path — a crash mid-write leaves the
// previous checkpoint intact.
func writeCheckpoint(path string, win *flows.Window, dicts map[string]*collector.DictState) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	n, err := writeContainer(bw, win, dicts)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return n, nil
}

func writeContainer(dst io.Writer, win *flows.Window, dicts map[string]*collector.DictState) (int64, error) {
	var total int64
	put := func(b []byte) error {
		n, err := dst.Write(b)
		total += int64(n)
		return err
	}
	if err := put([]byte(checkpointMagic)); err != nil {
		return total, err
	}

	var sec bytes.Buffer
	if err := flows.Snapshot(&sec, win); err != nil {
		return total, err
	}
	if err := putSection(put, sectionWindow, sec.Bytes()); err != nil {
		return total, err
	}

	sec.Reset()
	if err := encodeDicts(&sec, dicts); err != nil {
		return total, err
	}
	if err := putSection(put, sectionDicts, sec.Bytes()); err != nil {
		return total, err
	}
	return total, nil
}

func putSection(put func([]byte) error, tag string, body []byte) error {
	if err := put([]byte(tag)); err != nil {
		return err
	}
	var ln [4]byte
	binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
	if err := put(ln[:]); err != nil {
		return err
	}
	return put(body)
}

// encodeDicts serializes the dictionary bundle in sorted source order,
// so back-to-back checkpoints of identical state are byte-identical.
func encodeDicts(dst *bytes.Buffer, dicts map[string]*collector.DictState) error {
	srcs := make([]string, 0, len(dicts))
	for src := range dicts {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		dst.Write(b[:])
	}
	putBytes := func(b []byte) {
		putU32(uint32(len(b)))
		dst.Write(b)
	}
	putBools := func(v []bool) {
		b := make([]byte, len(v))
		for i, x := range v {
			if x {
				b[i] = 1
			}
		}
		putBytes(b)
	}
	putU32(uint32(len(dicts)))
	for _, src := range srcs {
		ds := dicts[src]
		putBytes([]byte(src))
		var e [8]byte
		binary.LittleEndian.PutUint64(e[:], uint64(ds.Epoch))
		dst.Write(e[:])
		putU32(ds.Rate)
		putBools(ds.LineV4)
		putBools(ds.BackV4)
		var tab bytes.Buffer
		if err := ds.Tables.Snapshot(&tab); err != nil {
			return err
		}
		putBytes(tab.Bytes())
	}
	return nil
}

// loadCheckpoint restores a checkpoint container against the given
// index and window options: the window section is mandatory, the
// dictionary section optional (old or dict-less checkpoints), and
// unknown section tags are skipped.
func loadCheckpoint(path string, idx *flows.BackendIndex, winOpts flows.Options) (*flows.Window, map[string]*collector.DictState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < len(checkpointMagic) || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, nil, fmt.Errorf("serve: %s is not a checkpoint (bad magic)", path)
	}
	rest := data[len(checkpointMagic):]
	var win *flows.Window
	var winBuf []byte
	var dictBuf []byte
	for len(rest) > 0 {
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("serve: truncated section header")
		}
		tag := string(rest[:4])
		ln := binary.LittleEndian.Uint32(rest[4:8])
		if uint64(ln) > maxSectionBytes || uint64(ln) > uint64(len(rest)-8) {
			return nil, nil, fmt.Errorf("serve: section %q claims %d bytes, %d remain", tag, ln, len(rest)-8)
		}
		body := rest[8 : 8+ln]
		rest = rest[8+ln:]
		switch tag {
		case sectionWindow:
			winBuf = body
		case sectionDicts:
			dictBuf = body
		}
	}
	if winBuf == nil {
		return nil, nil, fmt.Errorf("serve: checkpoint has no window section")
	}
	win, err = flows.Restore(bytes.NewReader(winBuf), idx, winOpts)
	if err != nil {
		return nil, nil, err
	}
	dicts := map[string]*collector.DictState{}
	if dictBuf != nil {
		if dicts, err = decodeDicts(dictBuf, win); err != nil {
			return nil, nil, err
		}
	}
	return win, dicts, nil
}

func decodeDicts(buf []byte, win *flows.Window) (map[string]*collector.DictState, error) {
	r := bytes.NewReader(buf)
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	getBytes := func() ([]byte, error) {
		n, err := getU32()
		if err != nil {
			return nil, err
		}
		if uint64(n) > uint64(r.Len()) {
			return nil, fmt.Errorf("serve: dictionary bundle field claims %d bytes, %d remain", n, r.Len())
		}
		b := make([]byte, n)
		_, err = io.ReadFull(r, b)
		return b, err
	}
	getBools := func() ([]bool, error) {
		b, err := getBytes()
		if err != nil {
			return nil, err
		}
		v := make([]bool, len(b))
		for i, x := range b {
			v[i] = x != 0
		}
		return v, nil
	}
	count, err := getU32()
	if err != nil {
		return nil, err
	}
	if uint64(count) > uint64(r.Len()) { // each entry is > 1 byte
		return nil, fmt.Errorf("serve: dictionary bundle claims %d entries, %d bytes remain", count, r.Len())
	}
	dicts := make(map[string]*collector.DictState, count)
	for i := uint32(0); i < count; i++ {
		src, err := getBytes()
		if err != nil {
			return nil, err
		}
		var e [8]byte
		if _, err := io.ReadFull(r, e[:]); err != nil {
			return nil, err
		}
		epoch := int64(binary.LittleEndian.Uint64(e[:]))
		rate, err := getU32()
		if err != nil {
			return nil, err
		}
		lineV4, err := getBools()
		if err != nil {
			return nil, err
		}
		backV4, err := getBools()
		if err != nil {
			return nil, err
		}
		tabBuf, err := getBytes()
		if err != nil {
			return nil, err
		}
		tables, err := flows.RestoreWireTables(bytes.NewReader(tabBuf), win)
		if err != nil {
			return nil, fmt.Errorf("serve: dictionary %q: %w", src, err)
		}
		dicts[string(src)] = &collector.DictState{
			Source: string(src), Epoch: epoch, Rate: rate,
			Tables: tables, LineV4: lineV4, BackV4: backV4,
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes after dictionary bundle", r.Len())
	}
	return dicts, nil
}
