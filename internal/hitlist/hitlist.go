// Package hitlist models IPv6 hitlists (Gasser et al., referenced in
// Section 3.3): curated lists of responsive IPv6 addresses annotated with
// the ports they answered on. The paper scans hitlist entries that
// "showed activity for popular IoT ports, i.e., 443 (HTTPS), 8883 (MQTT),
// 1883 (MQTT), and 5671 (AMQP)".
//
// Coverage is inherently partial — Section 3.6 names hitlist coverage as
// the limiting factor for IPv6 discovery — so construction takes a
// coverage fraction.
package hitlist

import (
	"net/netip"
	"sort"

	"iotmap/internal/simrand"
)

// IoTPorts are the ports whose activity qualifies an address for the
// custom IPv6 scan.
var IoTPorts = []uint16{443, 8883, 1883, 5671}

// Entry is one hitlist address with observed-active ports.
type Entry struct {
	Addr  netip.Addr
	Ports []uint16
}

// HasPort reports whether the entry was active on port.
func (e Entry) HasPort(port uint16) bool {
	for _, p := range e.Ports {
		if p == port {
			return true
		}
	}
	return false
}

// Hitlist is an ordered, deduplicated set of entries.
type Hitlist struct {
	entries []Entry
	index   map[netip.Addr]int
}

// New builds a hitlist from entries, merging duplicates.
func New(entries []Entry) *Hitlist {
	h := &Hitlist{index: map[netip.Addr]int{}}
	for _, e := range entries {
		if !e.Addr.IsValid() || e.Addr.Unmap().Is4() {
			continue // IPv6 only
		}
		if i, ok := h.index[e.Addr]; ok {
			h.entries[i].Ports = mergePorts(h.entries[i].Ports, e.Ports)
			continue
		}
		h.index[e.Addr] = len(h.entries)
		h.entries = append(h.entries, Entry{Addr: e.Addr, Ports: mergePorts(nil, e.Ports)})
	}
	sort.Slice(h.entries, func(i, j int) bool { return h.entries[i].Addr.Less(h.entries[j].Addr) })
	h.index = map[netip.Addr]int{}
	for i, e := range h.entries {
		h.index[e.Addr] = i
	}
	return h
}

func mergePorts(dst []uint16, src []uint16) []uint16 {
	seen := map[uint16]struct{}{}
	for _, p := range dst {
		seen[p] = struct{}{}
	}
	for _, p := range src {
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			dst = append(dst, p)
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// Len returns the entry count.
func (h *Hitlist) Len() int { return len(h.entries) }

// Entries returns all entries in address order.
func (h *Hitlist) Entries() []Entry { return h.entries }

// Contains reports membership.
func (h *Hitlist) Contains(a netip.Addr) bool {
	_, ok := h.index[a]
	return ok
}

// WithIoTPorts filters to entries active on at least one IoT port —
// the scan-input selection of Section 3.3.
func (h *Hitlist) WithIoTPorts() []Entry {
	var out []Entry
	for _, e := range h.entries {
		for _, p := range IoTPorts {
			if e.HasPort(p) {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Sample builds a hitlist covering roughly fraction of the candidate
// addresses, chosen deterministically from seed — the partial-coverage
// model of the real hitlists.
func Sample(candidates []Entry, fraction float64, seed int64) *Hitlist {
	if fraction >= 1 {
		return New(candidates)
	}
	if fraction <= 0 {
		return New(nil)
	}
	rng := simrand.Derive(seed, "hitlist")
	var kept []Entry
	for _, e := range candidates {
		if rng.Bool(fraction) {
			kept = append(kept, e)
		}
	}
	return New(kept)
}
