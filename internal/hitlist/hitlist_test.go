package hitlist

import (
	"net/netip"
	"testing"
)

func e(addr string, ports ...uint16) Entry {
	return Entry{Addr: netip.MustParseAddr(addr), Ports: ports}
}

func TestNewDedupAndMerge(t *testing.T) {
	h := New([]Entry{
		e("2001:db8::2", 443),
		e("2001:db8::1", 8883),
		e("2001:db8::2", 8883, 443), // merges with first
	})
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	entries := h.Entries()
	if entries[0].Addr != netip.MustParseAddr("2001:db8::1") {
		t.Fatal("entries not sorted")
	}
	merged := entries[1]
	if len(merged.Ports) != 2 || merged.Ports[0] != 443 || merged.Ports[1] != 8883 {
		t.Fatalf("merged ports = %v", merged.Ports)
	}
	if !h.Contains(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("Contains failed")
	}
	if h.Contains(netip.MustParseAddr("2001:db8::9")) {
		t.Fatal("phantom membership")
	}
}

func TestNewRejectsIPv4AndInvalid(t *testing.T) {
	h := New([]Entry{
		{Addr: netip.MustParseAddr("1.2.3.4"), Ports: []uint16{443}},
		{},
		e("2001:db8::1", 443),
	})
	if h.Len() != 1 {
		t.Fatalf("len = %d, IPv4/invalid should be dropped", h.Len())
	}
}

func TestHasPort(t *testing.T) {
	entry := e("2001:db8::1", 443, 8883)
	if !entry.HasPort(443) || entry.HasPort(80) {
		t.Fatal("HasPort broken")
	}
}

func TestWithIoTPorts(t *testing.T) {
	h := New([]Entry{
		e("2001:db8::1", 22),         // not an IoT port
		e("2001:db8::2", 8883),       // MQTT over TLS
		e("2001:db8::3", 5671, 9999), // AMQP + noise
	})
	iot := h.WithIoTPorts()
	if len(iot) != 2 {
		t.Fatalf("iot entries = %d", len(iot))
	}
}

func TestSampleCoverage(t *testing.T) {
	var candidates []Entry
	for i := 0; i < 400; i++ {
		var b [16]byte
		b[0], b[1] = 0x20, 0x01
		b[14], b[15] = byte(i>>8), byte(i)
		candidates = append(candidates, Entry{Addr: netip.AddrFrom16(b), Ports: []uint16{443}})
	}
	full := Sample(candidates, 1.0, 1)
	if full.Len() != 400 {
		t.Fatalf("full = %d", full.Len())
	}
	none := Sample(candidates, 0, 1)
	if none.Len() != 0 {
		t.Fatalf("none = %d", none.Len())
	}
	half := Sample(candidates, 0.5, 1)
	if half.Len() < 140 || half.Len() > 260 {
		t.Fatalf("half = %d", half.Len())
	}
	// Deterministic.
	again := Sample(candidates, 0.5, 1)
	if again.Len() != half.Len() {
		t.Fatal("sampling not deterministic")
	}
	other := Sample(candidates, 0.5, 2)
	if other.Len() == half.Len() {
		same := 0
		for _, entry := range other.Entries() {
			if half.Contains(entry.Addr) {
				same++
			}
		}
		if same == other.Len() {
			t.Fatal("different seeds drew identical samples")
		}
	}
}
