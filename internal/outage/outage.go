// Package outage injects backend disruptions into the traffic
// simulation — primarily the December 7, 2021 AWS us-east-1 event the
// paper studies in Section 6.1. During the outage window, affected
// servers lose most of their downstream traffic while devices keep
// retrying upstream; a fraction of devices stop trying altogether, which
// is why Figure 16's subscriber-line counts dip only slightly while
// Figure 15's volumes crater.
package outage

import (
	"fmt"
	"time"

	"iotmap/internal/isp"
	"iotmap/internal/simrand"
	"iotmap/internal/world"
)

// Scenario is one outage: a region (or cloud host) failing for a window
// of hours on one study day.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Day is the index into the study period's days.
	Day int
	// StartHour and EndHour bound the window (UTC, inclusive start,
	// exclusive end).
	StartHour, EndHour int
	// Region is the failing region code.
	Region string
	// CloudHost, when set, extends the blast radius to PR customers
	// hosted on that cloud in the failing region (the cascading-effects
	// question of Section 6.2).
	CloudHost string
	// DownFactor scales surviving downstream volume; UpFactor upstream.
	DownFactor, UpFactor float64
	// GiveUpProb is the chance an affected device-hour goes silent.
	GiveUpProb float64
	// SpillFactor is the mild dip applied to the failing provider's
	// other regions ("some interdependencies between the regions").
	SpillFactor float64
	// SpillProviders are the providers whose non-region servers feel
	// the spill (Amazon itself for us-east-1).
	SpillProviders map[string]bool
}

// AWSUSEast1 is the paper's Dec 7, 2021 scenario: us-east-1 down from
// roughly 15:30 to 22:30 UTC, hitting Amazon IoT and every backend
// hosted on AWS in that region.
func AWSUSEast1(dayIdx int) Scenario {
	return Scenario{
		Name:       "aws-us-east-1-2021-12-07",
		Day:        dayIdx,
		StartHour:  15,
		EndHour:    23,
		Region:     "us-east-1",
		CloudHost:  world.CloudAWS,
		DownFactor: 0.12,
		// Devices keep retrying: connection attempts keep the upstream
		// side near its normal volume, which is why Figure 16's line
		// counts barely move while Figure 15's volumes crater.
		UpFactor:    0.9,
		GiveUpProb:  0.1,
		SpillFactor: 0.93,
		SpillProviders: map[string]bool{
			"amazon": true,
		},
	}
}

// InWindow reports whether (day, hour) falls inside the outage.
func (s Scenario) InWindow(day, hour int) bool {
	return day == s.Day && hour >= s.StartHour && hour < s.EndHour
}

// Affects reports whether a server is inside the blast radius.
func (s Scenario) Affects(srv *world.Server) bool {
	if srv.Region.Region != s.Region {
		return false
	}
	if srv.Provider == "amazon" && s.CloudHost == world.CloudAWS {
		return true
	}
	return s.CloudHost != "" && srv.CloudHost == s.CloudHost
}

// Window returns the outage's wall-clock bounds for a study period.
func (s Scenario) Window(days []time.Time) (time.Time, time.Time, error) {
	if s.Day < 0 || s.Day >= len(days) {
		return time.Time{}, time.Time{}, fmt.Errorf("outage: day %d outside period", s.Day)
	}
	d := days[s.Day]
	return d.Add(time.Duration(s.StartHour) * time.Hour), d.Add(time.Duration(s.EndHour) * time.Hour), nil
}

// Modifier builds the flow modifier to install on an isp.Network. The
// give-up coin flips draw from the per-(line, day) modifier stream the
// simulator passes in, so the modifier holds no state of its own,
// parallel line simulation stays deterministic, and unaffected flows
// match a scenario-less baseline run exactly.
func (s Scenario) Modifier() isp.FlowModifier {
	return func(rng *simrand.Source, day, hour int, srv *world.Server, down, up uint64) (uint64, uint64, bool) {
		if !s.InWindow(day, hour) {
			return down, up, true
		}
		if s.Affects(srv) {
			if s.GiveUpProb > 0 && rng.Bool(s.GiveUpProb) {
				return 0, 0, false
			}
			return scale(down, s.DownFactor), scale(up, s.UpFactor), true
		}
		if s.SpillProviders[srv.Provider] && s.SpillFactor > 0 {
			return scale(down, s.SpillFactor), scale(up, s.SpillFactor), true
		}
		return down, up, true
	}
}

func scale(v uint64, f float64) uint64 {
	out := uint64(float64(v) * f)
	if v > 0 && out == 0 {
		out = 1
	}
	return out
}
