package outage

import (
	"testing"

	"iotmap/internal/geo"
	"iotmap/internal/simrand"
	"iotmap/internal/world"
)

func buildWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.Build(world.Config{Seed: 4, Scale: 0.05, Days: world.OutageDays()})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestScenarioWindow(t *testing.T) {
	s := AWSUSEast1(4) // Dec 7 is day index 4 of Dec 3..10
	if !s.InWindow(4, 15) || !s.InWindow(4, 22) {
		t.Fatal("outage hours not in window")
	}
	if s.InWindow(4, 14) || s.InWindow(4, 23) || s.InWindow(3, 18) {
		t.Fatal("window too wide")
	}
	start, end, err := s.Window(world.OutageDays())
	if err != nil {
		t.Fatal(err)
	}
	if start.Day() != 7 || end.Day() != 7 || start.Month() != 12 {
		t.Fatalf("window = %v..%v", start, end)
	}
	if _, _, err := (Scenario{Day: 99}).Window(world.OutageDays()); err == nil {
		t.Fatal("out-of-period day accepted")
	}
}

func TestAffectsBlastRadius(t *testing.T) {
	w := buildWorld(t)
	s := AWSUSEast1(4)
	affectedAmazon, affectedHosted, unaffected := 0, 0, 0
	for _, srv := range w.AllServers() {
		if s.Affects(srv) {
			if srv.Provider == "amazon" {
				affectedAmazon++
			} else {
				affectedHosted++
				if srv.CloudHost != world.CloudAWS {
					t.Fatalf("non-AWS-hosted server affected: %+v", srv)
				}
			}
			if srv.Region.Region != "us-east-1" {
				t.Fatalf("server outside us-east-1 affected: %v", srv.Region)
			}
		} else {
			unaffected++
		}
	}
	if affectedAmazon == 0 {
		t.Fatal("no amazon servers in blast radius")
	}
	if unaffected == 0 {
		t.Fatal("everything affected")
	}
	// Amazon's EU servers must NOT be affected (Figure 15's EU line only
	// dips via spill).
	for _, srv := range w.Providers["amazon"].Servers {
		if srv.Region.Continent == geo.Europe && s.Affects(srv) {
			t.Fatal("EU server in blast radius")
		}
	}
}

func TestModifierEffects(t *testing.T) {
	w := buildWorld(t)
	s := AWSUSEast1(4)
	mod := s.Modifier()
	rng := simrand.New(1)

	var usEast, eu *world.Server
	for _, srv := range w.Providers["amazon"].Servers {
		if srv.Region.Region == "us-east-1" && usEast == nil {
			usEast = srv
		}
		if srv.Region.Continent == geo.Europe && eu == nil {
			eu = srv
		}
	}
	if usEast == nil || eu == nil {
		t.Skip("world too small for both regions")
	}

	// Outside the window: identity.
	d, u, emit := mod(rng, 3, 18, usEast, 1000, 1000)
	if !emit || d != 1000 || u != 1000 {
		t.Fatalf("outside window: %d %d %v", d, u, emit)
	}
	// Inside the window: heavy loss downstream, retries upstream; some
	// device-hours vanish entirely.
	drops, total := 0, 0
	var dSum, uSum uint64
	for i := 0; i < 2000; i++ {
		d, u, emit := mod(rng, 4, 18, usEast, 1000, 1000)
		total++
		if !emit {
			drops++
			continue
		}
		dSum += d
		uSum += u
	}
	if drops == 0 || drops > total/2 {
		t.Fatalf("give-up fraction = %d/%d", drops, total)
	}
	avgD := float64(dSum) / float64(total-drops)
	avgU := float64(uSum) / float64(total-drops)
	if avgD > 200 {
		t.Fatalf("downstream not crushed: %f", avgD)
	}
	if avgU < 800 || avgU > 1000 {
		t.Fatalf("upstream retries off: %f", avgU)
	}
	// EU spill: mild dip only.
	d, u, emit = mod(rng, 4, 18, eu, 1000, 1000)
	if !emit || d < 900 || d > 999 || u < 900 {
		t.Fatalf("EU spill = %d %d %v", d, u, emit)
	}
}

func TestModifierZeroFloor(t *testing.T) {
	s := AWSUSEast1(0)
	if scale(0, 0.5) != 0 {
		t.Fatal("zero stays zero")
	}
	if scale(1, 0.0001) != 1 {
		t.Fatal("non-zero floors at 1")
	}
	_ = s
}
