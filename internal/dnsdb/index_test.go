package dnsdb

import (
	"fmt"
	"net/netip"
	"reflect"
	"regexp"
	"testing"
	"time"

	"iotmap/internal/core/patterns"
	"iotmap/internal/dnsmsg"
	"iotmap/internal/simrand"
)

// randomDB seeds a database with names mixing real provider namespaces
// (from the pattern table), lookalikes, and noise, across random types
// and sighting times.
func randomDB(seed int64, n int) *DB {
	rng := simrand.New(seed)
	docs := patterns.Docs()
	db := New()
	for i := 0; i < n; i++ {
		d := docs[rng.Intn(len(docs))]
		var name string
		switch rng.Intn(5) {
		case 0:
			name = fmt.Sprintf("dev%d.iot.%s", rng.Intn(500), d.SLD)
		case 1:
			if len(d.FixedFQDNs) > 0 {
				name = d.FixedFQDNs[rng.Intn(len(d.FixedFQDNs))]
			} else {
				name = d.SLD
			}
		case 2:
			name = fmt.Sprintf("dev%d.iot.not-%s", rng.Intn(500), d.SLD)
		case 3:
			name = fmt.Sprintf("Dev%d.IoT-MQTTS.cn-1.%s", rng.Intn(500), d.SLD)
		default:
			name = fmt.Sprintf("host%d.example%d.org", rng.Intn(500), rng.Intn(40))
		}
		at := t0.Add(time.Duration(rng.Intn(7*24)) * time.Hour)
		if rng.Bool(0.7) {
			addr := netip.AddrFrom4([4]byte{52, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(250))})
			db.RecordAddr(name, addr, at)
		} else {
			db.Record(name, dnsmsg.TypeCNAME, fmt.Sprintf("t%d.example.net.", rng.Intn(100)), at)
		}
	}
	return db
}

// flexibleSearchNaive is the reference full scan the indexed path must
// reproduce byte-for-byte.
func (db *DB) flexibleSearchNaive(re *regexp.Regexp, typ RRType, tr TimeRange) []Observation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Observation
	for name, list := range db.byName {
		if !re.MatchString(name) {
			continue
		}
		for _, o := range list {
			if typ != 0 && o.RRType != typ {
				continue
			}
			if !tr.Contains(o) {
				continue
			}
			out = append(out, *o)
		}
	}
	sortObs(out)
	return out
}

// TestFlexibleSearchQueryEquivalence: for random databases and every real
// provider pattern, the anchored precompiled query returns exactly what
// the naive full scan returns, across type and time filters.
func TestFlexibleSearchQueryEquivalence(t *testing.T) {
	pats := patterns.All()
	ranges := []TimeRange{{}, {From: t0.Add(24 * time.Hour)}, {To: t0.Add(48 * time.Hour)}}
	for seed := int64(1); seed <= 8; seed++ {
		db := randomDB(seed, 500)
		for _, p := range pats {
			q, err := CompileQuery(p.Regex.String(), p.Anchors()...)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range ranges {
				for _, typ := range []RRType{0, dnsmsg.TypeA} {
					naive := db.flexibleSearchNaive(p.Regex, typ, tr)
					indexed := db.FlexibleSearchQuery(q, typ, tr)
					if !reflect.DeepEqual(naive, indexed) {
						t.Fatalf("seed %d provider %s typ %v: indexed flexible search diverged: naive %d, indexed %d",
							seed, p.ProviderID(), typ, len(naive), len(indexed))
					}
				}
			}
		}
	}
}

// basicSearchNaive is the pre-index Basic Search: a full scan with exact
// or left-hand-wildcard matching.
func (db *DB) basicSearchNaive(name string, typ RRType, tr TimeRange) []Observation {
	name = dnsmsg.CanonicalName(name)
	db.mu.RLock()
	defer db.mu.RUnlock()
	match := func(candidate string) bool { return candidate == name }
	if len(name) > 2 && name[0] == '*' && name[1] == '.' {
		suffix := name[1:]
		match = func(candidate string) bool {
			return len(candidate) > len(suffix) && candidate[len(candidate)-len(suffix):] == suffix
		}
	}
	var out []Observation
	for n, list := range db.byName {
		if !match(n) {
			continue
		}
		for _, o := range list {
			if typ != 0 && o.RRType != typ {
				continue
			}
			if !tr.Contains(o) {
				continue
			}
			out = append(out, *o)
		}
	}
	sortObs(out)
	return out
}

// TestBasicSearchIndexedEquivalence: exact names, deep wildcards (bucket
// path), and TLD-level wildcards (full-scan path) all match the naive
// reference.
func TestBasicSearchIndexedEquivalence(t *testing.T) {
	queries := []string{
		"mqtt.googleapis.com",
		"dev1.iot.amazonaws.com",
		"absent.example.net",
		"*.amazonaws.com",
		"*.iot.amazonaws.com",
		"*.myhuaweicloud.com",
		"*.org",
		"*.com",
	}
	for seed := int64(1); seed <= 6; seed++ {
		db := randomDB(seed, 500)
		for _, qn := range queries {
			for _, tr := range []TimeRange{{}, {From: t0.Add(24 * time.Hour)}} {
				naive := db.basicSearchNaive(qn, 0, tr)
				indexed := db.BasicSearch(qn, 0, tr)
				if !reflect.DeepEqual(naive, indexed) {
					t.Fatalf("seed %d query %q: indexed basic search diverged: naive %d, indexed %d",
						seed, qn, len(naive), len(indexed))
				}
			}
		}
	}
}
