// Package dnsdb implements the passive-DNS substrate standing in for
// Farsight DNSDB (Section 3.3). It stores aggregated observations of DNS
// answers seen by a sensor network and supports the two query APIs the
// paper's Appendix A uses: Flexible Search (regular expressions) and Basic
// Search (left-hand wildcards), both with time-range filters.
//
// Like the real DNSDB, coverage is partial: the sensor network only
// witnesses a fraction of global resolutions (a documented limitation in
// Section 3.6), which the feeding code models by probabilistically
// skipping observations.
package dnsdb

import (
	"fmt"
	"net/netip"
	"regexp"
	"sort"
	"sync"
	"time"

	"iotmap/internal/dnsmsg"
)

// RRType mirrors the record types the study queries.
type RRType = dnsmsg.Type

// Observation is one aggregated (rrname, rrtype, rdata) tuple with its
// sighting window, the unit DNSDB returns.
type Observation struct {
	RRName    string
	RRType    RRType
	RData     string
	FirstSeen time.Time
	LastSeen  time.Time
	Count     int
}

// Addr parses the RData as an IP address; ok is false for non-address
// records (CNAME targets etc.).
func (o Observation) Addr() (netip.Addr, bool) {
	a, err := netip.ParseAddr(o.RData)
	return a, err == nil
}

type obsKey struct {
	name  string
	typ   RRType
	rdata string
}

// DB is the passive DNS database. Safe for concurrent use.
type DB struct {
	mu  sync.RWMutex
	obs map[obsKey]*Observation
	// byName accelerates rdata lookups per owner name.
	byName map[string][]*Observation
	// bySuffix buckets owner names by registered domain (last two
	// labels), so anchored Flexible Search and wildcard Basic Search scan
	// one provider's namespace instead of the whole sensor corpus.
	bySuffix map[string][]string
	// byRData indexes observations by rdata string, the reverse index
	// behind the shared-vs-dedicated IP analysis (Section 3.4).
	byRData map[string][]*Observation
}

// New returns an empty database.
func New() *DB {
	return &DB{
		obs:      map[obsKey]*Observation{},
		byName:   map[string][]*Observation{},
		bySuffix: map[string][]string{},
		byRData:  map[string][]*Observation{},
	}
}

// Record registers a sighting of name→rdata at time t. Counts and the
// sighting window aggregate over repeated calls, like a passive sensor
// dedupe stage.
func (db *DB) Record(name string, typ RRType, rdata string, t time.Time) {
	name = dnsmsg.CanonicalName(name)
	k := obsKey{name: name, typ: typ, rdata: rdata}
	db.mu.Lock()
	defer db.mu.Unlock()
	if o, ok := db.obs[k]; ok {
		if t.Before(o.FirstSeen) {
			o.FirstSeen = t
		}
		if t.After(o.LastSeen) {
			o.LastSeen = t
		}
		o.Count++
		return
	}
	o := &Observation{RRName: name, RRType: typ, RData: rdata, FirstSeen: t, LastSeen: t, Count: 1}
	db.obs[k] = o
	if _, seen := db.byName[name]; !seen {
		rd := dnsmsg.RegisteredDomain(name)
		db.bySuffix[rd] = append(db.bySuffix[rd], name)
	}
	db.byName[name] = append(db.byName[name], o)
	db.byRData[rdata] = append(db.byRData[rdata], o)
}

// RecordAddr is Record for address rdata.
func (db *DB) RecordAddr(name string, addr netip.Addr, t time.Time) {
	typ := dnsmsg.TypeAAAA
	if addr.Unmap().Is4() {
		typ = dnsmsg.TypeA
		addr = addr.Unmap()
	}
	db.Record(name, typ, addr.String(), t)
}

// Size returns the number of stored observations.
func (db *DB) Size() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.obs)
}

// TimeRange restricts queries to observations whose sighting window
// overlaps [From, To]. Zero values disable the corresponding bound,
// matching DNSDB's time_first_after / time_last_before parameters.
type TimeRange struct {
	From time.Time
	To   time.Time
}

// Contains reports whether the observation's window overlaps the range.
func (tr TimeRange) Contains(o *Observation) bool {
	if !tr.From.IsZero() && o.LastSeen.Before(tr.From) {
		return false
	}
	if !tr.To.IsZero() && o.FirstSeen.After(tr.To) {
		return false
	}
	return true
}

// Query is a precompiled Flexible Search handle: the compiled regular
// expression plus the registered-domain anchors that bound its matches.
// Compiling once and reusing the handle keeps regexp.Compile out of the
// per-day discovery loop.
type Query struct {
	re      *regexp.Regexp
	anchors []string
}

// CompileQuery compiles pattern into a reusable Query. anchors, when
// given, are canonical registered-domain suffixes (trailing-dot form, see
// dnsmsg.RegisteredDomain) that every matching rrname is guaranteed to end
// with — the literal anchors patterns.Pattern.Anchors exposes. With no
// anchors the query scans every stored name.
func CompileQuery(pattern string, anchors ...string) (*Query, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("dnsdb: bad pattern: %w", err)
	}
	return &Query{re: re, anchors: anchors}, nil
}

// String returns the query's regular expression source.
func (q *Query) String() string { return q.re.String() }

// FlexibleSearch returns observations whose rrname matches the regular
// expression, optionally restricted by rrtype (0 = any) and time range.
// This is the DNSDB Flexible Search API the paper's regexes target. The
// pattern is compiled per call; hot paths should precompile with
// CompileQuery and use FlexibleSearchQuery.
func (db *DB) FlexibleSearch(pattern string, typ RRType, tr TimeRange) ([]Observation, error) {
	q, err := CompileQuery(pattern)
	if err != nil {
		return nil, err
	}
	return db.FlexibleSearchQuery(q, typ, tr), nil
}

// FlexibleSearchQuery runs a precompiled query. Anchored queries scan only
// the names bucketed under the anchor registered domains; since an
// anchored regex cannot match a name outside its anchor buckets, the
// result is identical to the full scan.
func (db *DB) FlexibleSearchQuery(q *Query, typ RRType, tr TimeRange) []Observation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Observation
	collect := func(name string) {
		if !q.re.MatchString(name) {
			return
		}
		for _, o := range db.byName[name] {
			if typ != 0 && o.RRType != typ {
				continue
			}
			if !tr.Contains(o) {
				continue
			}
			out = append(out, *o)
		}
	}
	if len(q.anchors) > 0 {
		for _, a := range q.anchors {
			for _, name := range db.bySuffix[a] {
				collect(name)
			}
		}
	} else {
		for name := range db.byName {
			collect(name)
		}
	}
	sortObs(out)
	return out
}

// BasicSearch implements the Basic Search rrset/name API: an exact name
// or a left-hand wildcard label ("*.tencentdevices.com."). Exact names
// are a direct index hit; wildcard lookups scan only the suffix bucket of
// the wildcard's registered domain when it has one.
func (db *DB) BasicSearch(name string, typ RRType, tr TimeRange) []Observation {
	name = dnsmsg.CanonicalName(name)
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Observation
	collect := func(n string) {
		for _, o := range db.byName[n] {
			if typ != 0 && o.RRType != typ {
				continue
			}
			if !tr.Contains(o) {
				continue
			}
			out = append(out, *o)
		}
	}
	if len(name) > 2 && name[0] == '*' && name[1] == '.' {
		suffix := name[1:] // keep leading dot: "*.x.com." matches "a.x.com." but not "x.com."
		match := func(candidate string) bool {
			return len(candidate) > len(suffix) && candidate[len(candidate)-len(suffix):] == suffix
		}
		// Any name ending in ".x.com." shares x.com's registered domain,
		// so the bucket holds every possible match — unless the wildcard
		// is directly under a TLD, where matches span many buckets.
		rd := dnsmsg.RegisteredDomain(name[2:])
		if dnsmsg.Bucketable(rd) {
			for _, n := range db.bySuffix[rd] {
				if match(n) {
					collect(n)
				}
			}
		} else {
			for n := range db.byName {
				if match(n) {
					collect(n)
				}
			}
		}
	} else {
		collect(name)
	}
	sortObs(out)
	return out
}

// NamesForAddr returns every rrname observed resolving to addr inside the
// time range — the reverse lookup that powers the shared-vs-dedicated IP
// classification (Section 3.4: "we use DNSDB to identify all the domain
// names that resolve to that particular IP").
func (db *DB) NamesForAddr(addr netip.Addr, tr TimeRange) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[string]struct{}{}
	for _, o := range db.byRData[addr.String()] {
		if !tr.Contains(o) {
			continue
		}
		seen[o.RRName] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Addrs extracts the unique addresses from a result set.
func Addrs(obs []Observation) []netip.Addr {
	seen := map[netip.Addr]struct{}{}
	var out []netip.Addr
	for _, o := range obs {
		if a, ok := o.Addr(); ok {
			if _, dup := seen[a]; !dup {
				seen[a] = struct{}{}
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Names extracts the unique rrnames from a result set.
func Names(obs []Observation) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, o := range obs {
		if _, dup := seen[o.RRName]; !dup {
			seen[o.RRName] = struct{}{}
			out = append(out, o.RRName)
		}
	}
	sort.Strings(out)
	return out
}

func sortObs(out []Observation) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].RRName != out[j].RRName {
			return out[i].RRName < out[j].RRName
		}
		if out[i].RRType != out[j].RRType {
			return out[i].RRType < out[j].RRType
		}
		return out[i].RData < out[j].RData
	})
}
