package dnsdb

import (
	"net/netip"
	"testing"
	"time"

	"iotmap/internal/dnsmsg"
)

var (
	t0 = time.Date(2022, 2, 28, 0, 0, 0, 0, time.UTC)
	t1 = t0.Add(24 * time.Hour)
	t2 = t0.Add(48 * time.Hour)
)

func seeded() *DB {
	db := New()
	db.RecordAddr("a1.iot.us-east-1.amazonaws.com", netip.MustParseAddr("52.0.0.1"), t0)
	db.RecordAddr("a1.iot.us-east-1.amazonaws.com", netip.MustParseAddr("52.0.0.1"), t1)
	db.RecordAddr("a2.iot.eu-west-1.amazonaws.com", netip.MustParseAddr("52.0.1.1"), t1)
	db.RecordAddr("mqtt.googleapis.com", netip.MustParseAddr("74.125.0.5"), t0)
	db.RecordAddr("mqtt.googleapis.com", netip.MustParseAddr("2a00:1450::5"), t0)
	db.Record("cdn.shared.example.com", dnsmsg.TypeA, "52.0.0.1", t0)
	db.Record("www.shared.example.com", dnsmsg.TypeA, "52.0.0.1", t2)
	db.Record("alias.amazonaws.com", dnsmsg.TypeCNAME, "a1.iot.us-east-1.amazonaws.com.", t0)
	return db
}

func TestRecordAggregates(t *testing.T) {
	db := seeded()
	obs, err := db.FlexibleSearch(`^a1\.iot\.`, dnsmsg.TypeA, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("obs = %d", len(obs))
	}
	o := obs[0]
	if o.Count != 2 || !o.FirstSeen.Equal(t0) || !o.LastSeen.Equal(t1) {
		t.Fatalf("aggregate = %+v", o)
	}
}

func TestFlexibleSearchRegex(t *testing.T) {
	db := seeded()
	// The paper's Amazon regex shape.
	obs, err := db.FlexibleSearch(`(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)?(\.amazonaws\.com\.$)`, 0, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	names := Names(obs)
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	addrs := Addrs(obs)
	if len(addrs) != 2 {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestFlexibleSearchBadPattern(t *testing.T) {
	if _, err := New().FlexibleSearch(`([`, 0, TimeRange{}); err == nil {
		t.Fatal("bad regex accepted")
	}
}

func TestFlexibleSearchTypeFilter(t *testing.T) {
	db := seeded()
	obs, err := db.FlexibleSearch(`googleapis\.com\.$`, dnsmsg.TypeAAAA, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].RData != "2a00:1450::5" {
		t.Fatalf("AAAA filter = %+v", obs)
	}
}

func TestTimeRangeFilter(t *testing.T) {
	db := seeded()
	// Only observations overlapping [t2, ∞): the www.shared record and
	// the aggregated a1 record ends at t1 < t2, so only www matches.
	obs, err := db.FlexibleSearch(`shared\.example\.com\.$`, 0, TimeRange{From: t2})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].RRName != "www.shared.example.com." {
		t.Fatalf("time filter = %+v", obs)
	}
	// Window ending before everything.
	obs, _ = db.FlexibleSearch(`amazonaws\.com\.$`, 0, TimeRange{To: t0.Add(-time.Hour)})
	if len(obs) != 0 {
		t.Fatalf("early window matched %d", len(obs))
	}
}

func TestBasicSearchExactAndWildcard(t *testing.T) {
	db := seeded()
	exact := db.BasicSearch("mqtt.googleapis.com.", 0, TimeRange{})
	if len(exact) != 2 {
		t.Fatalf("exact = %d", len(exact))
	}
	wild := db.BasicSearch("*.amazonaws.com.", dnsmsg.TypeA, TimeRange{})
	names := Names(wild)
	if len(names) != 2 { // a1 and a2; alias is CNAME type
		t.Fatalf("wildcard names = %v", names)
	}
	// The wildcard must not match the bare suffix itself.
	db.RecordAddr("amazonaws.com", netip.MustParseAddr("52.9.9.9"), t0)
	wild = db.BasicSearch("*.amazonaws.com.", dnsmsg.TypeA, TimeRange{})
	for _, o := range wild {
		if o.RRName == "amazonaws.com." {
			t.Fatal("wildcard matched apex")
		}
	}
}

func TestNamesForAddr(t *testing.T) {
	db := seeded()
	names := db.NamesForAddr(netip.MustParseAddr("52.0.0.1"), TimeRange{})
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	// Time-bounded reverse lookup.
	names = db.NamesForAddr(netip.MustParseAddr("52.0.0.1"), TimeRange{From: t2})
	if len(names) != 1 || names[0] != "www.shared.example.com." {
		t.Fatalf("bounded names = %v", names)
	}
	if got := db.NamesForAddr(netip.MustParseAddr("9.9.9.9"), TimeRange{}); len(got) != 0 {
		t.Fatalf("unknown addr names = %v", got)
	}
}

func TestObservationAddr(t *testing.T) {
	o := Observation{RData: "1.2.3.4"}
	if a, ok := o.Addr(); !ok || a != netip.MustParseAddr("1.2.3.4") {
		t.Fatalf("Addr = %v, %v", a, ok)
	}
	o = Observation{RData: "target.example.com."}
	if _, ok := o.Addr(); ok {
		t.Fatal("CNAME rdata parsed as addr")
	}
}

func TestSizeAndDeterministicOrder(t *testing.T) {
	db := seeded()
	if db.Size() != 7 { // 8 sightings, one aggregated pair
		t.Fatalf("Size = %d", db.Size())
	}
	a, _ := db.FlexibleSearch(`\.com\.$`, 0, TimeRange{})
	b, _ := db.FlexibleSearch(`\.com\.$`, 0, TimeRange{})
	if len(a) != len(b) {
		t.Fatal("inconsistent result sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			db.RecordAddr("w.example.org", netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), t0)
		}
	}()
	for i := 0; i < 100; i++ {
		_, _ = db.FlexibleSearch(`example\.org\.$`, 0, TimeRange{})
		db.NamesForAddr(netip.MustParseAddr("10.0.0.1"), TimeRange{})
	}
	<-done
	if db.Size() != 500 {
		t.Fatalf("Size = %d", db.Size())
	}
}

func BenchmarkFlexibleSearch(b *testing.B) {
	db := New()
	for i := 0; i < 5000; i++ {
		db.RecordAddr(
			string(rune('a'+i%26))+"x.iot.eu-central-1.amazonaws.com",
			netip.AddrFrom4([4]byte{52, byte(i >> 8), byte(i), 1}), t0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.FlexibleSearch(`(.+)(\.iot\.)([[:alnum:]]+(-[[:alnum:]]+)+)?(\.amazonaws\.com\.$)`, 0, TimeRange{}); err != nil {
			b.Fatal(err)
		}
	}
}
