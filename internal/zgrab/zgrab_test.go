package zgrab

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"iotmap/internal/certmodel"
	"iotmap/internal/iotserver"
	"iotmap/internal/proto"
	"iotmap/internal/vnet"
)

// testWorld deploys one gateway of each TLS policy onto a fabric.
func testWorld(t *testing.T) (*vnet.Fabric, *certmodel.CA) {
	t.Helper()
	fabric := vnet.New()
	t.Cleanup(fabric.Close)
	ca, err := certmodel.NewCA("ZGrab Test CA")
	if err != nil {
		t.Fatal(err)
	}
	gw := iotserver.NewGateway(fabric, ca)
	endpoints := []iotserver.Endpoint{
		{ // Microsoft-style: default cert, HTTPS.
			Addr: netip.MustParseAddrPort("20.0.0.1:443"), Protocol: proto.HTTPS,
			Policy: iotserver.PolicyDefaultCert, Hostnames: []string{"hub1.azure-devices.test"},
		},
		{ // Microsoft-style: default cert, MQTTS with auth required.
			Addr: netip.MustParseAddrPort("20.0.0.1:8883"), Protocol: proto.MQTTS,
			Policy: iotserver.PolicyDefaultCert, Hostnames: []string{"hub1.azure-devices.test"},
			RequireMQTTAuth: true,
		},
		{ // Google-style: SNI required.
			Addr: netip.MustParseAddrPort("74.125.0.1:8883"), Protocol: proto.MQTTS,
			Policy: iotserver.PolicyRequireSNI, Hostnames: []string{"mqtt.googleapis.test"},
		},
		{ // Amazon-style: client certificate required.
			Addr: netip.MustParseAddrPort("52.0.0.1:8883"), Protocol: proto.MQTTS,
			Policy: iotserver.PolicyRequireClientCert, Hostnames: []string{"a1b2.iot.us-east-1.amazonaws.test"},
		},
		{ // Plaintext MQTT (Baidu-style port 1883).
			Addr: netip.MustParseAddrPort("111.0.0.1:1883"), Protocol: proto.MQTT,
			Policy: iotserver.PolicyNone,
		},
		{ // AMQPS endpoint.
			Addr: netip.MustParseAddrPort("20.0.0.2:5671"), Protocol: proto.AMQPS,
			Policy: iotserver.PolicyDefaultCert, Hostnames: []string{"amqp.bosch-iot.test"},
		},
		{ // CoAP endpoint (UDP-style exchange).
			Addr: netip.MustParseAddrPort("111.0.0.1:5683"), Protocol: proto.CoAP,
			Policy: iotserver.PolicyNone,
		},
	}
	for _, ep := range endpoints {
		if err := gw.Bind(ep); err != nil {
			t.Fatalf("bind %v: %v", ep.Addr, err)
		}
	}
	return fabric, ca
}

func scanner(f *vnet.Fabric) *Scanner {
	return &Scanner{Dialer: f, Timeout: 2 * time.Second, Seed: 1}
}

func TestProbeDefaultCertHTTPS(t *testing.T) {
	f, _ := testWorld(t)
	res := scanner(f).Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("20.0.0.1"), Port: 443, Protocol: proto.HTTPS,
	})
	if !res.Connected || !res.TLSDone || res.Cert == nil {
		t.Fatalf("result = %+v", res)
	}
	if res.Cert.SubjectCN != "hub1.azure-devices.test" {
		t.Fatalf("cert = %+v", res.Cert)
	}
	if !strings.HasPrefix(res.Banner, "HTTP/1.1 200") {
		t.Fatalf("banner = %q", res.Banner)
	}
}

func TestProbeMQTTSRefusalStillFingerprints(t *testing.T) {
	f, _ := testWorld(t)
	res := scanner(f).Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("20.0.0.1"), Port: 8883, Protocol: proto.MQTTS,
	})
	if res.Cert == nil {
		t.Fatalf("no cert from default-cert MQTTS: %+v", res)
	}
	if !strings.Contains(res.Banner, "not authorized") {
		t.Fatalf("banner = %q", res.Banner)
	}
}

func TestProbeSNIRequired(t *testing.T) {
	f, _ := testWorld(t)
	s := scanner(f)
	// Certless scan (no SNI): handshake must fail, no certificate.
	res := s.Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("74.125.0.1"), Port: 8883, Protocol: proto.MQTTS,
	})
	if !res.Connected || res.TLSDone || res.Cert != nil {
		t.Fatalf("certless scan against SNI endpoint = %+v", res)
	}
	// With the right name the handshake completes.
	res = s.Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("74.125.0.1"), Port: 8883, Protocol: proto.MQTTS,
		ServerName: "mqtt.googleapis.test",
	})
	if !res.TLSDone || res.Cert == nil {
		t.Fatalf("SNI scan = %+v", res)
	}
}

func TestProbeClientCertRequired(t *testing.T) {
	f, ca := testWorld(t)
	s := scanner(f)
	// Without a client certificate the handshake fails and no server
	// cert is recorded (the paper's Amazon case).
	res := s.Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("52.0.0.1"), Port: 8883, Protocol: proto.MQTTS,
		ServerName: "a1b2.iot.us-east-1.amazonaws.test",
	})
	if res.TLSDone || res.Cert != nil {
		t.Fatalf("certless mTLS scan = %+v", res)
	}
	// A device with a client certificate connects.
	devCert, err := ca.Issue(certmodel.Spec{SubjectCN: "device-1"})
	if err != nil {
		t.Fatal(err)
	}
	s.ClientCert = &devCert
	res = s.Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("52.0.0.1"), Port: 8883, Protocol: proto.MQTTS,
		ServerName: "a1b2.iot.us-east-1.amazonaws.test",
	})
	if !res.TLSDone || res.Cert == nil || !strings.Contains(res.Banner, "accepted") {
		t.Fatalf("mTLS device scan = %+v", res)
	}
}

func TestProbePlainMQTT(t *testing.T) {
	f, _ := testWorld(t)
	res := scanner(f).Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("111.0.0.1"), Port: 1883, Protocol: proto.MQTT,
	})
	if !res.Connected || res.TLSDone || res.Cert != nil {
		t.Fatalf("plain MQTT = %+v", res)
	}
	if !strings.Contains(res.Banner, "accepted") {
		t.Fatalf("banner = %q", res.Banner)
	}
}

func TestProbeAMQP(t *testing.T) {
	f, _ := testWorld(t)
	res := scanner(f).Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("20.0.0.2"), Port: 5671, Protocol: proto.AMQPS,
	})
	if res.Cert == nil || res.Banner != "AMQP(0) 1.0.0" {
		t.Fatalf("amqp = %+v", res)
	}
}

func TestProbeCoAP(t *testing.T) {
	f, _ := testWorld(t)
	res := scanner(f).Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("111.0.0.1"), Port: 5683, Protocol: proto.CoAP,
	})
	if res.Banner != "coap: 2.05" {
		t.Fatalf("coap = %+v", res)
	}
}

func TestProbeRefusedPort(t *testing.T) {
	f, _ := testWorld(t)
	res := scanner(f).Probe(context.Background(), Target{
		Addr: netip.MustParseAddr("20.0.0.1"), Port: 9999, Protocol: proto.HTTPS,
	})
	if res.Connected || res.Err == "" {
		t.Fatalf("refused probe = %+v", res)
	}
}

func TestScanCampaign(t *testing.T) {
	f, _ := testWorld(t)
	s := scanner(f)
	s.Concurrency = 4
	targets := []Target{
		{Addr: netip.MustParseAddr("20.0.0.1"), Port: 443, Protocol: proto.HTTPS},
		{Addr: netip.MustParseAddr("20.0.0.1"), Port: 8883, Protocol: proto.MQTTS},
		{Addr: netip.MustParseAddr("74.125.0.1"), Port: 8883, Protocol: proto.MQTTS},
		{Addr: netip.MustParseAddr("52.0.0.1"), Port: 8883, Protocol: proto.MQTTS},
		{Addr: netip.MustParseAddr("20.0.0.2"), Port: 5671, Protocol: proto.AMQPS},
		{Addr: netip.MustParseAddr("203.0.113.99"), Port: 443, Protocol: proto.HTTPS}, // dead
	}
	results := s.Scan(context.Background(), targets)
	if len(results) != len(targets) {
		t.Fatalf("results = %d", len(results))
	}
	// Deterministic order by endpoint.
	for i := 1; i < len(results); i++ {
		a, b := results[i-1].Target, results[i].Target
		if b.Addr.Less(a.Addr) {
			t.Fatal("results not sorted")
		}
	}
	certs := WithCerts(results)
	// Default-cert HTTPS + MQTTS + AMQPS harvest certs; SNI and mTLS do not.
	if len(certs) != 3 {
		t.Fatalf("certs = %d, want 3", len(certs))
	}
}

func TestScanRateLimit(t *testing.T) {
	f, _ := testWorld(t)
	s := scanner(f)
	s.Rate = 50 // 20ms between probes
	targets := []Target{
		{Addr: netip.MustParseAddr("20.0.0.1"), Port: 443, Protocol: proto.HTTPS},
		{Addr: netip.MustParseAddr("20.0.0.1"), Port: 443, Protocol: proto.HTTPS},
		{Addr: netip.MustParseAddr("20.0.0.1"), Port: 443, Protocol: proto.HTTPS},
	}
	start := time.Now()
	s.Scan(context.Background(), targets)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("rate limit not applied: %v", elapsed)
	}
}

func TestScanContextCancel(t *testing.T) {
	f, _ := testWorld(t)
	s := scanner(f)
	s.Rate = 1 // would take seconds
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results := s.Scan(ctx, []Target{
		{Addr: netip.MustParseAddr("20.0.0.1"), Port: 443, Protocol: proto.HTTPS},
		{Addr: netip.MustParseAddr("20.0.0.1"), Port: 8883, Protocol: proto.MQTTS},
	})
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled scan did not stop")
	}
	for _, r := range results {
		if r.Err == "" {
			t.Fatalf("cancelled probe succeeded: %+v", r)
		}
	}
}
