// Package zgrab implements the application-layer scanner of the
// methodology — the stand-in for ZGrab2 with the IoT protocol support the
// authors added to it (Section 3.3: "We add support for these IoT
// protocols to ZGrab2 and we use it to collect TLS certificates from
// these IPv6 addresses").
//
// A Scanner probes (address, port, protocol) targets through any dialer
// (the virtual fabric in the simulation, net.Dialer on a real network),
// performs TLS handshakes, records certificates only from completed
// handshakes, and fingerprints the protocol behind the port via MQTT
// CONNECT, HTTP GET, AMQP protocol-header, or CoAP discovery probes.
//
// Ethical controls from Section 3.7 are built in: a token-bucket rate
// limit ("the load measurement is very low"), randomized target order
// ("randomized spread of load"), and one probe per target.
package zgrab

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"iotmap/internal/amqp"
	"iotmap/internal/certmodel"
	"iotmap/internal/coap"
	"iotmap/internal/mqtt"
	"iotmap/internal/proto"
	"iotmap/internal/simrand"
)

// Dialer abstracts net.Dialer and vnet.Fabric.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Target is one probe instruction.
type Target struct {
	Addr     netip.Addr
	Port     uint16
	Protocol proto.Protocol
	// ServerName, when set, is sent as TLS SNI. Certless wide scans
	// leave it empty — exactly why SNI-required backends stay dark to
	// them.
	ServerName string
}

// Endpoint returns the dialable address.
func (t Target) Endpoint() netip.AddrPort { return netip.AddrPortFrom(t.Addr, t.Port) }

// Result is one probe outcome.
type Result struct {
	Target    Target
	Connected bool
	// TLSDone reports a completed TLS handshake.
	TLSDone bool
	// Cert is the leaf certificate metadata, present only when the
	// handshake completed (Section 3.3's failure semantics).
	Cert *certmodel.Spec
	// Banner is the protocol fingerprint, e.g. "mqtt: refused: not
	// authorized", "HTTP/1.1 200 OK", "AMQP(0) 1.0.0".
	Banner string
	// Err carries the failure description for diagnostics.
	Err string
}

// Scanner drives probes.
type Scanner struct {
	Dialer Dialer
	// Timeout bounds a single probe end-to-end. Zero means 3s.
	Timeout time.Duration
	// ClientCert, when set, is offered to mutual-TLS endpoints.
	ClientCert *tls.Certificate
	// Rate caps probes per second across the scan (0 = unlimited).
	Rate float64
	// Concurrency bounds in-flight probes (0 = 8).
	Concurrency int
	// Seed randomizes target order.
	Seed int64
}

// Probe scans one target.
func (s *Scanner) Probe(ctx context.Context, t Target) Result {
	res := Result{Target: t}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	network := "tcp"
	if t.Protocol.DefaultTransport() == proto.UDP {
		network = "udp"
	}
	conn, err := s.Dialer.DialContext(ctx, network, t.Endpoint().String())
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer conn.Close()
	res.Connected = true
	_ = conn.SetDeadline(time.Now().Add(timeout))

	if t.Protocol.TLSCapable() {
		conf := &tls.Config{
			InsecureSkipVerify: true, // scanners harvest, they don't trust
			ServerName:         t.ServerName,
		}
		if s.ClientCert != nil {
			conf.Certificates = []tls.Certificate{*s.ClientCert}
		}
		tc := tls.Client(conn, conf)
		if err := tc.Handshake(); err != nil {
			res.Err = "tls: " + err.Error()
			return res
		}
		res.TLSDone = true
		state := tc.ConnectionState()
		if len(state.PeerCertificates) > 0 {
			spec := certmodel.SpecFromX509(state.PeerCertificates[0])
			res.Cert = &spec
		}
		conn = tc
	}

	banner, err := s.protocolProbe(conn, t)
	if err != nil {
		res.Err = "probe: " + err.Error()
		return res
	}
	res.Banner = banner
	return res
}

func (s *Scanner) protocolProbe(conn net.Conn, t Target) (string, error) {
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	switch t.Protocol {
	case proto.MQTT, proto.MQTTS:
		ack, err := mqtt.ClientHandshake(conn, &mqtt.Connect{
			ClientID:     "zgrab-probe",
			CleanSession: true,
			KeepAlive:    10,
		}, timeout)
		if err != nil {
			return "", err
		}
		return "mqtt: " + ack.Code.String(), nil
	case proto.HTTP, proto.HTTPS:
		host := t.ServerName
		if host == "" {
			host = t.Addr.String()
		}
		if _, err := fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: %s\r\nUser-Agent: zgrab-lite/1.0\r\nConnection: close\r\n\r\n", host); err != nil {
			return "", err
		}
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil {
			return "", err
		}
		line := string(buf[:n])
		if i := strings.IndexAny(line, "\r\n"); i >= 0 {
			line = line[:i]
		}
		return line, nil
	case proto.AMQPS:
		theirs, err := amqp.ClientHello(conn, amqp.V10, timeout)
		if err != nil {
			return "", err
		}
		return theirs.String(), nil
	case proto.CoAP, proto.CoAPS:
		req := &coap.Message{Type: coap.Confirmable, Code: coap.CodeGET, MessageID: 0x5CA0, Token: []byte{0x5C}}
		req.SetPath(coap.WellKnownCore)
		wire, err := req.Marshal()
		if err != nil {
			return "", err
		}
		if _, err := conn.Write(wire); err != nil {
			return "", err
		}
		buf := make([]byte, 2048)
		n, err := conn.Read(buf)
		if err != nil {
			return "", err
		}
		resp, err := coap.Unmarshal(buf[:n])
		if err != nil {
			return "", err
		}
		return "coap: " + resp.Code.String(), nil
	default:
		// Banner grab: read whatever the service announces.
		buf := make([]byte, 128)
		n, err := conn.Read(buf)
		if err != nil {
			return "", err
		}
		return strings.TrimSpace(string(buf[:n])), nil
	}
}

// Scan probes every target with bounded concurrency and rate limiting,
// in randomized order, returning results sorted by endpoint for
// determinism.
func (s *Scanner) Scan(ctx context.Context, targets []Target) []Result {
	shuffled := make([]Target, len(targets))
	copy(shuffled, targets)
	rng := simrand.New(s.Seed)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	conc := s.Concurrency
	if conc <= 0 {
		conc = 8
	}
	var limiter *time.Ticker
	if s.Rate > 0 {
		interval := time.Duration(float64(time.Second) / s.Rate)
		if interval > 0 {
			limiter = time.NewTicker(interval)
			defer limiter.Stop()
		}
	}

	results := make([]Result, len(shuffled))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, t := range shuffled {
		if limiter != nil {
			select {
			case <-ctx.Done():
				results[i] = Result{Target: t, Err: ctx.Err().Error()}
				continue
			case <-limiter.C:
			}
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t Target) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = s.Probe(ctx, t)
		}(i, t)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool {
		a, b := results[i].Target, results[j].Target
		if a.Addr != b.Addr {
			return a.Addr.Less(b.Addr)
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Protocol < b.Protocol
	})
	return results
}

// WithCerts filters results down to those that harvested a certificate.
func WithCerts(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Cert != nil {
			out = append(out, r)
		}
	}
	return out
}
