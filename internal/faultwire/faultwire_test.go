package faultwire

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"iotmap/internal/netflow"
)

var studyStart = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)

// cleanFeed builds a well-formed framed stream: one v5 frame per hour
// for the given number of hours, plus a flush per frame.
func cleanFeed(t testing.TB, hours int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := netflow.NewFrameWriter(&buf)
	for h := 0; h < hours; h++ {
		recs := []netflow.Record{{
			Src: netip.MustParseAddr("203.0.113.7"), Dst: netip.MustParseAddr("198.51.100.9"),
			SrcPort: 443, DstPort: 50000 + uint16(h), Proto: 6,
			Bytes: 1200, Packets: 3, Start: studyStart.Add(time.Duration(h) * time.Hour),
		}}
		pkt, err := netflow.EncodeV5(netflow.V5Header{
			UnixSecs:         uint32(studyStart.Add(time.Duration(h) * time.Hour).Unix()),
			SamplingInterval: 1,
		}, recs)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := fw.WriteV5(pkt); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := fw.WriteFlush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	return buf.Bytes()
}

func readAll(t testing.TB, r io.Reader) ([]byte, error) {
	t.Helper()
	var out bytes.Buffer
	_, err := io.Copy(&out, r)
	return out.Bytes(), err
}

func TestWrapUntouchedWhenNoRuleMatches(t *testing.T) {
	sc := &Scenario{Seed: 1, Rules: []Rule{{Stream: 2, Faults: Faults{DropProb: 1}}}}
	base := bytes.NewReader([]byte("hello"))
	if got := sc.Wrap(0, "isp-a", base); got != io.Reader(base) {
		t.Fatalf("stream 0 should be returned untouched")
	}
	sc2 := &Scenario{Seed: 1, Rules: []Rule{{Stream: -1, Vantage: "ixp", Faults: Faults{DropProb: 1}}}}
	if got := sc2.Wrap(0, "isp-a", base); got != io.Reader(base) {
		t.Fatalf("vantage isp-a should be returned untouched")
	}
	if got := sc2.Wrap(1, "ixp", base); got == io.Reader(base) {
		t.Fatalf("vantage ixp should be wrapped")
	}
}

func TestDeterministicDamage(t *testing.T) {
	feed := cleanFeed(t, 168)
	run := func() ([]byte, Counts) {
		sc := Uniform(99, 0.2)
		r := sc.Wrap(0, "isp-a", feed2Reader(feed))
		out, err := readAll(t, r)
		if err != io.EOF && err != nil {
			t.Fatalf("read: %v", err)
		}
		return out, sc.Totals()
	}
	a, ca := run()
	b, cb := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different damaged streams (%d vs %d bytes)", len(a), len(b))
	}
	if ca != cb {
		t.Fatalf("same seed produced different counts: %+v vs %+v", ca, cb)
	}
	if ca.Corrupted == 0 {
		t.Fatalf("expected corruption at p=0.2 over 336 frames, got %+v", ca)
	}
	if bytes.Equal(a, feed) {
		t.Fatalf("damaged stream should differ from clean feed")
	}

	c, _ := func() ([]byte, Counts) {
		sc := Uniform(100, 0.2)
		r := sc.Wrap(0, "isp-a", feed2Reader(feed))
		out, _ := readAll(t, r)
		return out, sc.Totals()
	}()
	if bytes.Equal(a, c) {
		t.Fatalf("different seeds should damage differently")
	}
}

func TestDropDupTruncate(t *testing.T) {
	feed := cleanFeed(t, 168)
	sc := &Scenario{Seed: 7, Rules: []Rule{{Stream: -1, Faults: Faults{
		DropProb: 0.3, DupProb: 0.3, TruncateProb: 0.2,
	}}}}
	r := sc.Wrap(0, "v", feed2Reader(feed))
	if _, err := readAll(t, r); err != nil && err != io.EOF {
		t.Fatalf("read: %v", err)
	}
	c := sc.Totals()
	if c.Dropped == 0 || c.Duplicated == 0 || c.Truncated == 0 {
		t.Fatalf("expected drops, dups, and truncations: %+v", c)
	}
}

func TestFeedDeathAtHour(t *testing.T) {
	feed := cleanFeed(t, 48)
	sc := FeedDeath(5, "isp-b", 24, studyStart)

	// Another vantage is untouched.
	if _, ok := sc.Wrap(0, "isp-a", bytes.NewReader(feed)).(*Reader); ok {
		t.Fatalf("isp-a should not be wrapped")
	}

	r := sc.Wrap(0, "isp-b", feed2Reader(feed))
	out, err := readAll(t, r)
	if !errors.Is(err, ErrInjectedDisconnect) {
		t.Fatalf("want ErrInjectedDisconnect, got %v", err)
	}
	// All frames before hour 24 must be delivered intact: parse them back.
	fr := netflow.NewFrameReader(bytes.NewReader(out))
	v5 := 0
	for {
		f, ferr := fr.Next()
		if ferr != nil {
			if ferr != io.EOF && !netflow.IsTruncation(ferr) {
				t.Fatalf("pre-death frames should be clean, got %v", ferr)
			}
			break
		}
		if f.Type == netflow.FrameV5 {
			v5++
		}
	}
	if v5 != 24 {
		t.Fatalf("want 24 v5 frames before death at hour 24, got %d", v5)
	}
	if !sc.Totals().Killed {
		t.Fatalf("scenario should record the kill")
	}

	// KillClean ends with EOF instead.
	scc := &Scenario{Seed: 5, Start: studyStart, Rules: []Rule{
		{Stream: -1, FromHour: 24, Faults: Faults{Kill: true, KillClean: true}},
	}}
	rc := scc.Wrap(0, "isp-b", feed2Reader(feed))
	if _, err := readAll(t, rc); err != nil && err != io.EOF {
		t.Fatalf("clean kill should end in EOF, got %v", err)
	}
}

func TestHourWindowRule(t *testing.T) {
	feed := cleanFeed(t, 48)
	// Drop everything, but only during hours [10,20).
	sc := &Scenario{Seed: 3, Start: studyStart, Rules: []Rule{
		{Stream: -1, FromHour: 10, ToHour: 20, Faults: Faults{DropProb: 1}},
	}}
	r := sc.Wrap(0, "v", feed2Reader(feed))
	out, err := readAll(t, r)
	if err != nil && err != io.EOF {
		t.Fatalf("read: %v", err)
	}
	fr := netflow.NewFrameReader(bytes.NewReader(out))
	hours := map[int]bool{}
	for {
		f, ferr := fr.Next()
		if ferr != nil {
			break
		}
		if f.Type != netflow.FrameV5 {
			continue
		}
		h, _, err := netflow.DecodeV5Strict(f.Payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		hours[int((int64(h.UnixSecs)-studyStart.Unix())/3600)] = true
	}
	for h := 0; h < 48; h++ {
		inWindow := h >= 10 && h < 20
		if hours[h] == inWindow {
			t.Fatalf("hour %d: delivered=%v, want %v", h, hours[h], !inWindow)
		}
	}
	if got := sc.Totals().Dropped; got != 20 {
		// 10 v5 frames + 10 flush frames inside the window.
		t.Fatalf("want 20 dropped frames, got %d", got)
	}
}

func TestShortReadsContentNeutral(t *testing.T) {
	feed := cleanFeed(t, 24)
	damaged := func(short bool) []byte {
		sc := &Scenario{Seed: 11, Rules: []Rule{{Stream: -1, Faults: Faults{
			CorruptProb: 0.2, ShortReads: short,
		}}}}
		out, err := readAll(t, sc.Wrap(0, "v", feed2Reader(feed)))
		if err != nil && err != io.EOF {
			t.Fatalf("read: %v", err)
		}
		return out
	}
	if !bytes.Equal(damaged(false), damaged(true)) {
		t.Fatalf("short reads must not change stream content")
	}
	// And short reads really are short.
	sc := &Scenario{Seed: 11, Rules: []Rule{{Stream: -1, Faults: Faults{ShortReads: true}}}}
	r := sc.Wrap(0, "v", feed2Reader(feed))
	buf := make([]byte, 4096)
	n, err := r.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n > 7 {
		t.Fatalf("short read returned %d bytes", n)
	}
}

func TestWriterMatchesReader(t *testing.T) {
	feed := cleanFeed(t, 168)
	scR := Uniform(42, 0.15)
	rOut, err := readAll(t, scR.Wrap(0, "v", feed2Reader(feed)))
	if err != nil && err != io.EOF {
		t.Fatalf("reader: %v", err)
	}

	scW := Uniform(42, 0.15)
	var wOut bytes.Buffer
	w := scW.WrapWriter(0, "v", &wOut)
	// Feed the writer in awkward chunk sizes to exercise reassembly.
	for i := 0; i < len(feed); i += 13 {
		end := i + 13
		if end > len(feed) {
			end = len(feed)
		}
		if _, err := w.Write(feed[i:end]); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if !bytes.Equal(rOut, wOut.Bytes()) {
		t.Fatalf("writer and reader damage diverge (%d vs %d bytes)", len(wOut.Bytes()), len(rOut))
	}
	if err := w.(*Writer).Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if scR.Totals() != scW.Totals() {
		t.Fatalf("counts diverge: %+v vs %+v", scR.Totals(), scW.Totals())
	}
}

func TestWriterKill(t *testing.T) {
	feed := cleanFeed(t, 48)
	sc := FeedDeath(9, "", 24, studyStart)
	var out bytes.Buffer
	w := sc.WrapWriter(0, "v", &out)
	var werr error
	for i := 0; i < len(feed); i += 64 {
		end := i + 64
		if end > len(feed) {
			end = len(feed)
		}
		if _, werr = w.Write(feed[i:end]); werr != nil {
			break
		}
	}
	if !errors.Is(werr, ErrInjectedDisconnect) {
		t.Fatalf("want ErrInjectedDisconnect from writer, got %v", werr)
	}
}

// feed2Reader returns a fresh reader over a copy of the feed, because
// the injector mutates frames in place and the tests reuse the feed.
func feed2Reader(feed []byte) io.Reader {
	cp := make([]byte, len(feed))
	copy(cp, feed)
	return bytes.NewReader(cp)
}
