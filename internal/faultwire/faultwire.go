// Package faultwire is the deterministic chaos harness for the framed
// NetFlow wire path: seeded io.Reader/io.Writer wrappers that damage a
// clean frame stream the way production feeds are damaged — corrupted
// bytes, dropped and duplicated frames, frames cut short mid-payload,
// reads that dribble or stall, and transports that die mid-week — plus
// a Scenario type that schedules which faults hit which stream during
// which study hours ("vantage B's feed dies Wednesday 14:00").
//
// Every byte-altering decision draws from a simrand stream derived from
// (Scenario.Seed, vantage, stream index) at frame granularity, so the
// damaged byte stream is a pure function of the seed and the clean
// feed: two runs with the same fault seed produce byte-identical
// damage, hence byte-identical collector Stats and figures. Stalls and
// short reads only shape the timing of delivery, never its content, so
// enabling them cannot move a figure.
package faultwire

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"time"

	"iotmap/internal/netflow"
	"iotmap/internal/simrand"
)

// ErrInjectedDisconnect is the sticky error a killed stream returns —
// the harness's stand-in for a mid-week TCP reset.
var ErrInjectedDisconnect = errors.New("faultwire: injected disconnect")

// Faults is one rule's fault mix. Probabilities are per frame;
// zero-valued fields inject nothing.
type Faults struct {
	// CorruptProb flips one bit of the frame. Half the corruptions land
	// in the 7-byte frame envelope (exercising the collector's resync
	// scan), half anywhere in the payload (exercising decode-and-drop) —
	// a deliberate bias so short runs see both failure modes.
	CorruptProb float64
	// DropProb silently omits the frame.
	DropProb float64
	// DupProb emits the frame twice.
	DupProb float64
	// TruncateProb emits only a prefix of the frame, desyncing the
	// stream until the collector scans back to a frame boundary.
	TruncateProb float64
	// ShortReads caps each Read at a few bytes (reader side only);
	// content-neutral.
	ShortReads bool
	// StallEvery, when > 0, sleeps StallFor before every StallEvery-th
	// frame; content-neutral.
	StallEvery int
	StallFor   time.Duration
	// Kill hard-stops the stream at the first frame inside the rule's
	// window: the transport dies with ErrInjectedDisconnect (or a clean
	// EOF when KillClean is set) and nothing more is delivered.
	Kill      bool
	KillClean bool
}

// Rule schedules a fault mix onto part of the federation: a stream, a
// vantage, a study-hour window — or all of them.
type Rule struct {
	// Stream selects one stream index; negative means every stream.
	Stream int
	// Vantage selects one vantage label; empty means every vantage.
	Vantage string
	// FromHour/ToHour bound the active study-hour window (inclusive
	// start, exclusive end). ToHour <= 0 leaves the window open-ended,
	// so the zero value is "always active".
	FromHour, ToHour int
	Faults           Faults
}

// active reports whether the rule applies at the given study hour.
// Stream/vantage matching has already happened by the time a rule is
// attached to an injector.
func (r Rule) active(hour int) bool {
	if hour < r.FromHour {
		return false
	}
	return r.ToHour <= 0 || hour < r.ToHour
}

// matches reports whether the rule could ever apply to the stream,
// regardless of hour — Wrap returns the reader untouched otherwise.
func (r Rule) matches(stream int, vantage string) bool {
	return (r.Stream < 0 || r.Stream == stream) && (r.Vantage == "" || r.Vantage == vantage)
}

// Counts tallies the faults one stream actually suffered.
type Counts struct {
	Corrupted  int64
	Dropped    int64
	Duplicated int64
	Truncated  int64
	Stalls     int64
	Killed     bool
}

func (c *Counts) add(o Counts) {
	c.Corrupted += o.Corrupted
	c.Dropped += o.Dropped
	c.Duplicated += o.Duplicated
	c.Truncated += o.Truncated
	c.Stalls += o.Stalls
	c.Killed = c.Killed || o.Killed
}

// Scenario is a reproducible chaos schedule over a federation's wire
// streams. Start anchors the study-hour clock (the hour of a frame is
// read from its v5 header's UnixSecs); Seed drives every fault draw.
type Scenario struct {
	Seed  int64
	Start time.Time
	Rules []Rule

	mu     sync.Mutex
	totals Counts
}

// Uniform is the workhorse scenario: corrupt every stream's frames with
// probability p for the whole study.
func Uniform(seed int64, p float64) *Scenario {
	return &Scenario{Seed: seed, Rules: []Rule{{Stream: -1, Faults: Faults{CorruptProb: p}}}}
}

// FeedDeath returns the scheduled-disconnect scenario of the package
// comment: the named vantage's feed dies at the given study hour.
func FeedDeath(seed int64, vantage string, hour int, start time.Time) *Scenario {
	return &Scenario{Seed: seed, Start: start, Rules: []Rule{
		{Stream: -1, Vantage: vantage, FromHour: hour, Faults: Faults{Kill: true}},
	}}
}

// Totals returns the fault counts accumulated across every wrapped
// stream so far.
func (s *Scenario) Totals() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

func (s *Scenario) record(c Counts) {
	s.mu.Lock()
	s.totals.add(c)
	s.mu.Unlock()
}

// rulesFor filters the schedule down to one stream. A nil result means
// the stream is untouched.
func (s *Scenario) rulesFor(stream int, vantage string) []Rule {
	var out []Rule
	for _, r := range s.Rules {
		if r.matches(stream, vantage) {
			out = append(out, r)
		}
	}
	return out
}

// Wrap returns r with the scenario's faults injected for (stream,
// vantage). Streams no rule matches are returned untouched — a
// scenario scoped to one vantage leaves the rest of the federation
// byte-identical to a clean run.
func (s *Scenario) Wrap(stream int, vantage string, r io.Reader) io.Reader {
	rules := s.rulesFor(stream, vantage)
	if rules == nil {
		return r
	}
	return &Reader{
		inner: netflow.NewFrameReader(r),
		inj:   s.newInjector(vantage, stream, rules),
		io:    simrand.New(simrand.SeedN(s.Seed, "faultwire-io/"+vantage, int64(stream))),
		sc:    s,
	}
}

// WrapWriter is Wrap for the exporter side: frames written through it
// arrive damaged. Frames may be split across Write calls; the wrapper
// reassembles them before applying faults.
func (s *Scenario) WrapWriter(stream int, vantage string, w io.Writer) io.Writer {
	rules := s.rulesFor(stream, vantage)
	if rules == nil {
		return w
	}
	return &Writer{w: w, inj: s.newInjector(vantage, stream, rules), sc: s}
}

func (s *Scenario) newInjector(vantage string, stream int, rules []Rule) *injector {
	return &injector{
		rng:       simrand.New(simrand.SeedN(s.Seed, "faultwire/"+vantage, int64(stream))),
		rules:     rules,
		startUnix: s.Start.Unix(),
		haveStart: !s.Start.IsZero(),
	}
}

// injector is the shared per-stream fault engine: it sees the clean
// stream one frame at a time, in order, and decides each frame's fate
// with draws from its seeded rng — so the damage is independent of how
// the bytes are chunked by the transport around it.
type injector struct {
	rng   *simrand.Source
	rules []Rule
	// startUnix anchors study hour 0; haveStart gates the hour clock
	// (without a Start, hour stays 0 and only rules whose window covers
	// hour 0 ever fire).
	startUnix int64
	haveStart bool
	hour      int
	frames    int64
	counts    Counts
	killErr   error
}

// clockFrom updates the study-hour clock from a v5 frame's header.
// v6 and flush frames inherit the last observed hour.
func (in *injector) clockFrom(typ byte, payload []byte) {
	if !in.haveStart || typ != netflow.FrameV5 || len(payload) < 12 {
		return
	}
	unix := int64(binary.BigEndian.Uint32(payload[8:12]))
	if h := (unix - in.startUnix) / 3600; h >= 0 {
		in.hour = int(h)
	}
}

// process applies the schedule to one clean frame (envelope+payload as
// raw bytes; process may mutate it) and appends the damaged output to
// dst. It returns the extended buffer, the stall to apply before
// delivery, and the kill error once the stream is scheduled dead.
func (in *injector) process(dst []byte, typ byte, frame []byte) ([]byte, time.Duration, error) {
	in.frames++
	in.clockFrom(typ, frame[7:])
	var stall time.Duration
	drop, dup, truncAt := false, false, -1
	for _, r := range in.rules {
		if !r.active(in.hour) {
			continue
		}
		f := r.Faults
		if f.Kill {
			in.counts.Killed = true
			in.killErr = ErrInjectedDisconnect
			if f.KillClean {
				in.killErr = io.EOF
			}
			return dst, 0, in.killErr
		}
		if f.DropProb > 0 && in.rng.Bool(f.DropProb) {
			drop = true
		}
		if f.TruncateProb > 0 && in.rng.Bool(f.TruncateProb) && len(frame) > 1 {
			truncAt = 1 + in.rng.Intn(len(frame)-1)
		}
		if f.CorruptProb > 0 && in.rng.Bool(f.CorruptProb) {
			pos := in.rng.Intn(len(frame))
			if in.rng.Bool(0.5) || len(frame) <= 7 {
				pos = in.rng.Intn(7) // envelope hit: exercises resync
			}
			// An envelope flip can still yield a valid-looking header
			// whose length now points past the real frame — that is the
			// desync case resync exists for, so keep whatever falls out.
			frame[pos] ^= byte(1) << in.rng.Intn(8)
			in.counts.Corrupted++
		}
		if f.DupProb > 0 && in.rng.Bool(f.DupProb) {
			dup = true
		}
		if f.StallEvery > 0 && in.frames%int64(f.StallEvery) == 0 {
			stall = f.StallFor
			in.counts.Stalls++
		}
	}
	switch {
	case drop:
		in.counts.Dropped++
	case truncAt >= 0:
		in.counts.Truncated++
		dst = append(dst, frame[:truncAt]...)
	default:
		dst = append(dst, frame...)
		if dup {
			in.counts.Duplicated++
			dst = append(dst, frame...)
		}
	}
	return dst, stall, nil
}

// shortReads reports whether any rule currently dribbles reads.
func (in *injector) shortReads() bool {
	for _, r := range in.rules {
		if r.Faults.ShortReads && r.active(in.hour) {
			return true
		}
	}
	return false
}

// Reader serves the damaged byte stream of one wrapped feed. It parses
// clean frames from the inner reader, damages them per the schedule,
// and hands the bytes out through Read — possibly a dribble at a time
// when short reads are scheduled.
type Reader struct {
	inner    *netflow.FrameReader
	inj      *injector
	io       *simrand.Source
	sc       *Scenario
	frameBuf []byte
	out      []byte
	err      error
	done     bool
}

// Read implements io.Reader over the damaged stream.
func (r *Reader) Read(p []byte) (int, error) {
	for len(r.out) == 0 {
		if r.err != nil {
			r.finish()
			return 0, r.err
		}
		f, err := r.inner.Next()
		if err != nil {
			// The clean inner feed ended (or failed); pass it through.
			r.err = err
			continue
		}
		r.frameBuf = appendEnvelope(r.frameBuf[:0], f.Type, f.Payload)
		out, stall, kerr := r.inj.process(r.out[:0], f.Type, r.frameBuf)
		r.out = out
		if stall > 0 {
			time.Sleep(stall)
		}
		if kerr != nil {
			r.err = kerr
			r.out = nil
		}
	}
	n := len(p)
	if r.inj.shortReads() {
		if lim := 1 + r.io.Intn(7); lim < n {
			n = lim
		}
	}
	if n > len(r.out) {
		n = len(r.out)
	}
	n = copy(p[:n], r.out)
	r.out = r.out[n:]
	return n, nil
}

// Counts returns the faults this stream has suffered so far.
func (r *Reader) Counts() Counts { return r.inj.counts }

// finish folds the stream's fault counts into the scenario totals,
// once, when the stream ends.
func (r *Reader) finish() {
	if r.done {
		return
	}
	r.done = true
	r.sc.record(r.inj.counts)
}

// Writer is the exporter-side wrapper: bytes written through it arrive
// at the underlying writer with the schedule's damage applied. Partial
// frames are buffered until complete.
type Writer struct {
	w    io.Writer
	inj  *injector
	sc   *Scenario
	pend []byte
	out  []byte
	dead bool
	done bool
}

// Write implements io.Writer. Once the schedule kills the stream, every
// further Write fails with the kill error (unless the kill was clean,
// in which case writes are silently discarded — the transport is gone
// but the exporter is not to be crashed for it).
func (w *Writer) Write(p []byte) (int, error) {
	if w.dead {
		if w.inj.killErr == io.EOF {
			return len(p), nil
		}
		return 0, w.inj.killErr
	}
	w.pend = append(w.pend, p...)
	w.out = w.out[:0]
	for {
		frame, rest, ok := splitFrame(w.pend)
		if !ok {
			break
		}
		out, stall, kerr := w.inj.process(w.out, frame[2], frame)
		w.out = out
		w.pend = rest
		if stall > 0 {
			time.Sleep(stall)
		}
		if kerr != nil {
			w.dead = true
			w.finish()
			if len(w.out) > 0 {
				w.w.Write(w.out) //nolint:errcheck // best-effort final flush
			}
			if kerr == io.EOF {
				return len(p), nil
			}
			return 0, kerr
		}
	}
	if len(w.out) > 0 {
		if _, err := w.w.Write(w.out); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Counts returns the faults this stream has suffered so far.
func (w *Writer) Counts() Counts { return w.inj.counts }

// Close folds the stream's fault counts into the scenario totals and
// closes the underlying writer when it is an io.Closer. Unlike the
// Reader — which ends itself at EOF — a Writer only learns the feed is
// over from Close.
func (w *Writer) Close() error {
	w.finish()
	if c, ok := w.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// finish folds the stream's fault counts into the scenario totals once.
func (w *Writer) finish() {
	if w.done {
		return
	}
	w.done = true
	w.sc.record(w.inj.counts)
}

// splitFrame splits one complete frame off the front of b. It trusts
// the exporter side to write well-formed frames (the wrapper damages
// them *after* this split).
func splitFrame(b []byte) (frame, rest []byte, ok bool) {
	if len(b) < 7 {
		return nil, b, false
	}
	n := int(binary.BigEndian.Uint32(b[3:7]))
	if len(b) < 7+n {
		return nil, b, false
	}
	return b[:7+n], b[7+n:], true
}

// appendEnvelope re-frames a parsed frame back into raw bytes.
func appendEnvelope(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, 'N', 'F', typ, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-4:], uint32(len(payload)))
	return append(dst, payload...)
}
