package blocklist

import (
	"net/netip"
	"testing"

	"iotmap/internal/world"
)

func TestAggregateMerge(t *testing.T) {
	a1 := netip.MustParseAddr("192.0.2.1")
	a2 := netip.MustParseAddr("192.0.2.2")
	agg := NewAggregate([]List{
		{Name: "proxies", Reason: ReasonProxy, Entries: map[netip.Addr]struct{}{a1: {}}},
		{Name: "attacks", Reason: ReasonAttack, Entries: map[netip.Addr]struct{}{a1: {}, a2: {}}},
	})
	if agg.Size() != 2 || agg.Lists() != 2 {
		t.Fatalf("size=%d lists=%d", agg.Size(), agg.Lists())
	}
	if rs := agg.Reasons(a1); len(rs) != 2 {
		t.Fatalf("a1 reasons = %v", rs)
	}
	if rs := agg.Reasons(netip.MustParseAddr("192.0.2.9")); rs != nil {
		t.Fatal("unlisted address has reasons")
	}
}

func TestMatch(t *testing.T) {
	a1 := netip.MustParseAddr("16.0.0.1")
	agg := NewAggregate([]List{
		{Name: "l", Reason: ReasonMalware, Entries: map[netip.Addr]struct{}{a1: {}}},
	})
	hits := agg.Match(
		[]netip.Addr{a1, netip.MustParseAddr("16.0.0.2")},
		func(netip.Addr) string { return "amazon" },
	)
	if len(hits) != 1 || hits[0].Provider != "amazon" || hits[0].Reasons[0] != ReasonMalware {
		t.Fatalf("hits = %+v", hits)
	}
	per := PerProvider(hits)
	if per["amazon"] != 1 {
		t.Fatalf("per = %v", per)
	}
}

func TestBuildFireHOL(t *testing.T) {
	w, err := world.Build(world.Config{Seed: 8, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	agg := BuildFireHOL(w, 8)
	if agg.Lists() != 67 {
		t.Fatalf("lists = %d, want 67", agg.Lists())
	}
	if agg.Size() < 67*150 {
		t.Fatalf("aggregate suspiciously small: %d", agg.Size())
	}
	var addrs []netip.Addr
	for _, s := range w.AllServers() {
		addrs = append(addrs, s.Addr)
	}
	hits := agg.Match(addrs, func(a netip.Addr) string {
		if s, ok := w.ServerAt(a); ok {
			return s.Provider
		}
		return "?"
	})
	if len(hits) == 0 {
		t.Fatal("no backend IPs on the aggregate")
	}
	per := PerProvider(hits)
	// The six §6.2 providers — and only those — may appear.
	allowed := map[string]bool{"baidu": true, "microsoft": true, "sap": true, "google": true, "amazon": true, "alibaba": true}
	for id := range per {
		if !allowed[id] {
			t.Fatalf("unexpected provider on blocklist: %s (%v)", id, per)
		}
	}
	for id := range allowed {
		if per[id] == 0 {
			t.Fatalf("missing §6.2 provider %s: %v", id, per)
		}
	}
}

func TestBuildFireHOLDeterministic(t *testing.T) {
	w, err := world.Build(world.Config{Seed: 8, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	a := BuildFireHOL(w, 8)
	b := BuildFireHOL(w, 8)
	if a.Size() != b.Size() {
		t.Fatalf("non-deterministic: %d vs %d", a.Size(), b.Size())
	}
}
