// Package blocklist models the FireHOL-style blocklist aggregation of
// Section 6.2: dozens of source lists (open proxies, malware C2, attack
// and spam feeds, personal lists) merged into one reputation set, then
// intersected with the discovered backend IPs. The paper finds 16 backend
// IPs across 6 providers on the February 2022 aggregate.
package blocklist

import (
	"fmt"
	"net/netip"
	"sort"

	"iotmap/internal/simrand"
	"iotmap/internal/world"
)

// Reason categorizes why an address is listed.
type Reason string

// The paper's §6.2 reason taxonomy.
const (
	ReasonProxy    Reason = "open-proxy/anonymizer"
	ReasonMalware  Reason = "malware"
	ReasonAttack   Reason = "network-attack/spam"
	ReasonPersonal Reason = "personal-blocklist"
)

// List is one source blocklist.
type List struct {
	Name    string
	Reason  Reason
	Entries map[netip.Addr]struct{}
}

// Aggregate is the merged view with per-address reasons.
type Aggregate struct {
	lists   []List
	reasons map[netip.Addr][]Reason
}

// NewAggregate merges lists.
func NewAggregate(lists []List) *Aggregate {
	a := &Aggregate{lists: lists, reasons: map[netip.Addr][]Reason{}}
	for _, l := range lists {
		for addr := range l.Entries {
			a.reasons[addr] = append(a.reasons[addr], l.Reason)
		}
	}
	return a
}

// Size returns the number of distinct listed addresses.
func (a *Aggregate) Size() int { return len(a.reasons) }

// Lists returns the number of source lists.
func (a *Aggregate) Lists() int { return len(a.lists) }

// Reasons returns why an address is listed (nil if not listed).
func (a *Aggregate) Reasons(addr netip.Addr) []Reason { return a.reasons[addr] }

// Hit is one backend address found on the aggregate.
type Hit struct {
	Addr     netip.Addr
	Provider string
	Reasons  []Reason
}

// Match intersects backend addresses with the aggregate. ownerOf maps an
// address to its provider ID.
func (a *Aggregate) Match(addrs []netip.Addr, ownerOf func(netip.Addr) string) []Hit {
	var out []Hit
	for _, addr := range addrs {
		if rs, ok := a.reasons[addr]; ok {
			out = append(out, Hit{Addr: addr, Provider: ownerOf(addr), Reasons: rs})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// PerProvider tallies hits by provider.
func PerProvider(hits []Hit) map[string]int {
	out := map[string]int{}
	for _, h := range hits {
		out[h.Provider]++
	}
	return out
}

// paperListings is the §6.2 per-provider listing count at Scale=1:
// "Baidu (5 IPs), Microsoft (4 IPs), SAP (4 IPs), Google (3 IPs),
// Amazon (2 IPs), and Alibaba (1 IP)" — 19 listings over 16 distinct
// addresses (some appear on multiple lists).
var paperListings = []struct {
	provider string
	count    int
}{
	{"baidu", 5}, {"microsoft", 4}, {"sap", 4}, {"google", 3}, {"amazon", 2}, {"alibaba", 1},
}

// BuildFireHOL synthesizes the February 2022 aggregate against a world:
// 67 source lists dominated by unrelated addresses, plus the paper's
// per-provider backend listings (scaled with the world).
func BuildFireHOL(w *world.World, seed int64) *Aggregate {
	rng := simrand.Derive(seed, "firehol")
	mkAddr := func() netip.Addr {
		// Unrelated Internet noise outside the backend ranges.
		return netip.AddrFrom4([4]byte{byte(180 + rng.Intn(60)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))})
	}
	reasonOf := []Reason{ReasonProxy, ReasonMalware, ReasonAttack, ReasonPersonal}
	lists := make([]List, 0, 67)
	for i := 0; i < 67; i++ {
		l := List{
			Name:    fmt.Sprintf("feed-%02d", i),
			Reason:  reasonOf[i%len(reasonOf)],
			Entries: map[netip.Addr]struct{}{},
		}
		for k := 0; k < 200+rng.Intn(400); k++ {
			l.Entries[mkAddr()] = struct{}{}
		}
		lists = append(lists, l)
	}
	// Plant the backend listings: scale counts with the world but list
	// at least one address for every named provider that has servers.
	li := 0
	for _, pl := range paperListings {
		p, ok := w.Providers[pl.provider]
		if !ok || len(p.Servers) == 0 {
			continue
		}
		n := pl.count
		if w.Cfg.Scale < 1 {
			n = int(float64(n)*w.Cfg.Scale + 0.999)
			if n < 1 {
				n = 1
			}
		}
		for k := 0; k < n && k < len(p.Servers); k++ {
			srv := p.Servers[rng.Intn(len(p.Servers))]
			lists[li%len(lists)].Entries[srv.Addr] = struct{}{}
			li++
		}
	}
	return NewAggregate(lists)
}
