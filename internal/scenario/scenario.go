// Package scenario is the declarative disruption-suite engine: it
// composes the repo's dormant disruption stack — internal/bgpstream
// events, internal/outage blast radii, internal/faultwire feed chaos —
// into named, seeded, timed federation-wide what-ifs. A Suite is a list
// of Steps scheduled on the study-hour clock; Compile lowers each step
// (and the whole suite cumulatively) into the primitives the federated
// pipeline already understands: per-vantage flow modifiers for the
// traffic plane, a faultwire schedule for the wire plane, and a
// bgpstream event list plus time-aware origin resolution for the
// Section 6.2 impact check. Every draw derives from the suite seed via
// simrand, so a rerun of any suite is byte-identical.
//
// The three step shapes mirror the paper's Section 6 questions scaled
// to a federation (Saidi et al., IMC '22) and Tagliaro et al. 2024's
// framing of provider infrastructure — not addresses — as the unit
// that fails:
//
//   - Hijack: a prefix hijack of one provider's announcements,
//     blackholing or degrading its traffic at a configurable subset of
//     vantages (route visibility is vantage-dependent).
//   - RegionalOutage: an outage.Scenario whose blast radius also kills
//     one vantage's wire feed mid-week (the collector's reconnect,
//     resync, and degraded-vantage machinery under real load).
//   - Migration: a provider's fleet moves between ASes at a cutover
//     hour. Addresses do not change, so Federation.Coverage() must
//     report the infrastructure identically before and after; only the
//     time-aware AS origin (and any transient cutover blip) differs.
package scenario

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"iotmap/internal/asdb"
	"iotmap/internal/bgpstream"
	"iotmap/internal/faultwire"
	"iotmap/internal/isp"
	"iotmap/internal/outage"
	"iotmap/internal/simrand"
	"iotmap/internal/world"
)

// Suite is a named, seeded list of disruption steps on one study clock.
type Suite struct {
	// Name labels the suite in figures and reports.
	Name string
	// Seed drives every derived draw (fault schedules); zero means 1.
	Seed int64
	// Steps are the what-ifs, each compiled alone and all together.
	Steps []Step
}

// Step is one what-if. Exactly the non-nil members apply; a step may
// combine them (an outage during a hijack), though the presets keep one
// failure mode per step so the deltas read cleanly.
type Step struct {
	// Name labels the step within the suite.
	Name string
	// Hijack is a prefix hijack of one provider (nil: none).
	Hijack *Hijack
	// Outage is a regional outage with optional feed loss (nil: none).
	Outage *RegionalOutage
	// Migration is a provider AS migration (nil: none).
	Migration *Migration
}

// Hijack blackholes or degrades one provider's traffic at the vantages
// whose upstream accepted the bogus route, for a window of study hours.
type Hijack struct {
	// Provider is the victim's world ID ("amazon", "google", ...).
	Provider string
	// FromHour/ToHour bound the hijack on the study-hour clock
	// (absolute hours since the first study day; inclusive start,
	// exclusive end). ToHour 0 means end of study.
	FromHour, ToHour int
	// Vantages lists the vantage names that accepted the hijacked
	// route; empty means all of them (a globally visible hijack).
	Vantages []string
	// Blackhole drops the affected flows entirely; otherwise
	// DegradeFactor scales both directions (a hijacker that forwards
	// some traffic through a lossy detour).
	Blackhole bool
	// DegradeFactor is the surviving volume fraction when not
	// blackholing (default 0.25).
	DegradeFactor float64
}

// RegionalOutage is a backend-side outage whose blast radius can also
// take a vantage's wire feed down with it (the exporter sat in the
// failing region too).
type RegionalOutage struct {
	// Outage is the traffic-plane scenario, visible from every vantage.
	Outage outage.Scenario
	// KillFeedVantage names the vantage whose wire feed dies (empty:
	// feeds stay up).
	KillFeedVantage string
	// KillAtHour is the study hour the feed dies at.
	KillAtHour int
}

// Migration moves one provider's backend fleet to a new AS at a
// cutover hour. Addresses are unchanged — this is a control-plane
// event. With BlipFactor zero the traffic plane is untouched and every
// figure must match the clean baseline byte for byte; a positive
// BlipFactor scales the provider's volumes during the cutover blip.
type Migration struct {
	// Provider is the migrating fleet's world ID.
	Provider string
	// ToASN is the destination AS.
	ToASN asdb.ASN
	// AtHour is the cutover study hour.
	AtHour int
	// BlipFactor, when > 0, scales the provider's volumes (both
	// directions) during the cutover blip.
	BlipFactor float64
	// BlipHours is the blip length in hours (default 1 when BlipFactor
	// is set).
	BlipHours int
}

// Compiled is one lowered scenario, ready for the federated pipeline:
// everything the traffic plane needs is in ModifierFor, everything the
// wire plane needs in Faults, and the control-plane view in Events and
// Migrations.
type Compiled struct {
	// Name is "<suite>/<step>" (or "<suite>/cumulative").
	Name string
	// Faults is the wire-plane fault schedule (nil: clean wire). Its
	// Start is left zero so the study anchors it to its own first day.
	Faults *faultwire.Scenario
	// ModifierFor returns the vantage's composed traffic-plane
	// modifier (nil: this vantage is untouched).
	ModifierFor func(vantage string) isp.FlowModifier
	// Events are the scenario's BGP feed entries (hijack
	// announcements), for the Section 6.2 impact check.
	Events []bgpstream.Event
	// Migrations are the control-plane AS moves in effect.
	Migrations []Migration
}

// validate checks one step against the world.
func (st Step) validate(w *world.World, hours int) error {
	if st.Hijack == nil && st.Outage == nil && st.Migration == nil {
		return fmt.Errorf("scenario: step %q is empty", st.Name)
	}
	check := func(provider string) error {
		for _, srv := range w.AllServers() {
			if srv.Provider == provider {
				return nil
			}
		}
		return fmt.Errorf("scenario: step %q: unknown provider %q", st.Name, provider)
	}
	if h := st.Hijack; h != nil {
		if err := check(h.Provider); err != nil {
			return err
		}
		if h.FromHour < 0 || h.FromHour >= hours {
			return fmt.Errorf("scenario: step %q: hijack FromHour %d outside study (%d hours)", st.Name, h.FromHour, hours)
		}
		if h.ToHour != 0 && h.ToHour <= h.FromHour {
			return fmt.Errorf("scenario: step %q: hijack window [%d,%d) is empty", st.Name, h.FromHour, h.ToHour)
		}
	}
	if o := st.Outage; o != nil {
		if o.Outage.Day < 0 || o.Outage.Day*24 >= hours {
			return fmt.Errorf("scenario: step %q: outage day %d outside study", st.Name, o.Outage.Day)
		}
		if o.KillFeedVantage != "" && (o.KillAtHour < 0 || o.KillAtHour >= hours) {
			return fmt.Errorf("scenario: step %q: feed death hour %d outside study (%d hours)", st.Name, o.KillAtHour, hours)
		}
	}
	if m := st.Migration; m != nil {
		if err := check(m.Provider); err != nil {
			return err
		}
		if m.AtHour < 0 || m.AtHour >= hours {
			return fmt.Errorf("scenario: step %q: cutover hour %d outside study (%d hours)", st.Name, m.AtHour, hours)
		}
	}
	return nil
}

// hijackPrefixes derives the victim's announced prefixes from its
// server addresses (/24 per IPv4 neighborhood, /48 per IPv6), sorted
// for deterministic event order.
func hijackPrefixes(w *world.World, provider string) []netip.Prefix {
	seen := map[netip.Prefix]struct{}{}
	for _, srv := range w.AllServers() {
		if srv.Provider != provider {
			continue
		}
		bits := 24
		if srv.Addr.Is6() {
			bits = 48
		}
		p, err := srv.Addr.Prefix(bits)
		if err != nil {
			continue
		}
		seen[p] = struct{}{}
	}
	out := make([]netip.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// modifier builds the hijack's traffic-plane effect for one vantage.
func (h Hijack) modifier(vantage string, hours int) isp.FlowModifier {
	if len(h.Vantages) > 0 {
		hit := false
		for _, v := range h.Vantages {
			if v == vantage {
				hit = true
				break
			}
		}
		if !hit {
			return nil
		}
	}
	from, to := h.FromHour, h.ToHour
	if to == 0 {
		to = hours
	}
	factor := h.DegradeFactor
	if factor <= 0 {
		factor = 0.25
	}
	provider, blackhole := h.Provider, h.Blackhole
	return func(_ *simrand.Source, day, hour int, srv *world.Server, down, up uint64) (uint64, uint64, bool) {
		abs := day*24 + hour
		if abs < from || abs >= to || srv.Provider != provider {
			return down, up, true
		}
		if blackhole {
			return 0, 0, false
		}
		return scale(down, factor), scale(up, factor), true
	}
}

// modifier builds the migration's cutover blip (nil when pure
// control-plane).
func (m Migration) modifier() isp.FlowModifier {
	if m.BlipFactor <= 0 {
		return nil
	}
	blip := m.BlipHours
	if blip <= 0 {
		blip = 1
	}
	from, to := m.AtHour, m.AtHour+blip
	provider, factor := m.Provider, m.BlipFactor
	return func(_ *simrand.Source, day, hour int, srv *world.Server, down, up uint64) (uint64, uint64, bool) {
		abs := day*24 + hour
		if abs < from || abs >= to || srv.Provider != provider {
			return down, up, true
		}
		return scale(down, factor), scale(up, factor), true
	}
}

// scale mirrors the outage package's volume floor: surviving nonzero
// volumes never round to silence.
func scale(v uint64, f float64) uint64 {
	out := uint64(float64(v) * f)
	if v > 0 && out == 0 {
		out = 1
	}
	return out
}

// compileSteps lowers a set of steps into one Compiled scenario. The
// fault seed is derived per (suite seed, label) so distinct scenarios
// of one suite draw independent fault streams while reruns reproduce
// them exactly.
func (s Suite) compileSteps(w *world.World, name, label string, steps []Step) (Compiled, error) {
	hours := len(w.Days) * 24
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	c := Compiled{Name: name}
	// perVantage accumulates vantage-specific modifiers; global ones
	// (outages, blips) apply everywhere.
	var global []isp.FlowModifier
	var hijacks []Hijack
	var rules []faultwire.Rule
	for _, st := range steps {
		if err := st.validate(w, hours); err != nil {
			return Compiled{}, err
		}
		if h := st.Hijack; h != nil {
			hijacks = append(hijacks, *h)
			at := w.Days[0].Add(time.Duration(h.FromHour) * time.Hour)
			for _, p := range hijackPrefixes(w, h.Provider) {
				c.Events = append(c.Events, bgpstream.WhatIfHijack(p, at))
			}
		}
		if o := st.Outage; o != nil {
			global = append(global, o.Outage.Modifier())
			if o.KillFeedVantage != "" {
				rules = append(rules, faultwire.Rule{
					Stream: -1, Vantage: o.KillFeedVantage,
					FromHour: o.KillAtHour, Faults: faultwire.Faults{Kill: true},
				})
			}
		}
		if m := st.Migration; m != nil {
			c.Migrations = append(c.Migrations, *m)
			global = append(global, m.modifier())
		}
	}
	if len(rules) > 0 {
		c.Faults = &faultwire.Scenario{
			Seed:  simrand.SeedN(seed, "scenario/"+s.Name, hashLabel(label)),
			Rules: rules,
		}
	}
	if len(global) > 0 || len(hijacks) > 0 {
		c.ModifierFor = func(vantage string) isp.FlowModifier {
			mods := append([]isp.FlowModifier(nil), global...)
			for _, h := range hijacks {
				mods = append(mods, h.modifier(vantage, hours))
			}
			return isp.ChainModifiers(mods...)
		}
	}
	return c, nil
}

// hashLabel folds a scenario label into a seed-derivation index.
func hashLabel(label string) int64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return int64(h)
}

// Compile lowers the suite: one Compiled per step (the per-step
// deltas), plus — when the suite has more than one step — a final
// cumulative scenario with every step active at once.
func (s Suite) Compile(w *world.World) ([]Compiled, error) {
	if len(w.Days) == 0 {
		return nil, fmt.Errorf("scenario: world has no study days")
	}
	var out []Compiled
	for i, st := range s.Steps {
		name := st.Name
		if name == "" {
			name = fmt.Sprintf("step%d", i)
		}
		c, err := s.compileSteps(w, s.Name+"/"+name, name, []Step{st})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(s.Steps) > 1 {
		c, err := s.compileSteps(w, s.Name+"/cumulative", "cumulative", s.Steps)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// OriginAt returns the suite's time-aware AS origin resolver: the
// world's static routing table, overridden per migration once its
// cutover hour has passed. Feed it to bgpstream.CheckImpactAt so AS
// outage events attribute correctly across the cutover.
func (s Suite) OriginAt(w *world.World) bgpstream.OriginAt {
	var migs []Migration
	for _, st := range s.Steps {
		if st.Migration != nil {
			migs = append(migs, *st.Migration)
		}
	}
	return func(a netip.Addr, at time.Time) (asdb.ASN, bool) {
		if len(migs) > 0 {
			if srv, ok := w.ServerAt(a); ok {
				for _, m := range migs {
					cutover := w.Days[0].Add(time.Duration(m.AtHour) * time.Hour)
					if srv.Provider == m.Provider && !at.Before(cutover) {
						return m.ToASN, true
					}
				}
			}
		}
		return w.AS.Origin(a)
	}
}

// Events collects every step's BGP feed entries without compiling the
// traffic plane (the figures path uses it for the impact report).
func (s Suite) Events(w *world.World) []bgpstream.Event {
	var out []bgpstream.Event
	for _, st := range s.Steps {
		if h := st.Hijack; h != nil {
			at := w.Days[0].Add(time.Duration(h.FromHour) * time.Hour)
			for _, p := range hijackPrefixes(w, h.Provider) {
				out = append(out, bgpstream.WhatIfHijack(p, at))
			}
		}
	}
	return out
}
