package scenario

import (
	"sort"

	"iotmap/internal/outage"
)

// Preset suite names (cmd/iotdisrupt -suite).
const (
	// PresetHijackT1 hijacks the largest provider's prefixes for half a
	// day, visible from the residential ISP and IXP vantages but not
	// from isp-b (route visibility is vantage-dependent).
	PresetHijackT1 = "hijack-t1"
	// PresetOutageFeedLoss replays the Dec 7 2021 AWS us-east-1 outage
	// with the blast radius extended to isp-b's exporter: that
	// vantage's wire feed dies mid-outage.
	PresetOutageFeedLoss = "outage-feedloss"
	// PresetMigrationD1 migrates the D1 (bosch) fleet to a private AS
	// mid-study — pure control-plane, so every figure must match the
	// clean baseline byte for byte.
	PresetMigrationD1 = "migration-d1"
	// PresetPaperWeek runs all three steps: per-step deltas plus the
	// cumulative everything-at-once scenario.
	PresetPaperWeek = "paper-week"
)

// MigrationTargetASN is the presets' destination AS for fleet moves: a
// private-use ASN guaranteed never to collide with the world's
// generated AS space.
const MigrationTargetASN = 64512

// Preset vantage names match cmd/iotdisrupt's federation (isp-a,
// isp-b, ixp); suites are declarative, so callers with different
// vantage sets just build their own Suite literals.

func presetHijack() Step {
	return Step{
		Name: "hijack-t1",
		Hijack: &Hijack{
			Provider: "amazon",
			// Day 2, 10:00-22:00 on the study clock.
			FromHour: 2*24 + 10, ToHour: 2*24 + 22,
			Vantages:  []string{"isp-a", "ixp"},
			Blackhole: true,
		},
	}
}

func presetOutageFeedLoss() Step {
	return Step{
		Name: "outage-feedloss",
		Outage: &RegionalOutage{
			Outage:          outage.AWSUSEast1(4),
			KillFeedVantage: "isp-b",
			// One hour into the outage window (day 4, 16:00).
			KillAtHour: 4*24 + 16,
		},
	}
}

func presetMigration() Step {
	return Step{
		Name: "migration-d1",
		Migration: &Migration{
			Provider: "bosch",
			ToASN:    MigrationTargetASN,
			// Day 5, noon.
			AtHour: 5*24 + 12,
		},
	}
}

// Presets returns the paper-grounded suite library, keyed by name.
// Every preset assumes an 8-day study period (world.StudyDays or
// world.OutageDays) and the iotdisrupt federation's vantage names.
func Presets(seed int64) map[string]Suite {
	return map[string]Suite{
		PresetHijackT1:       {Name: PresetHijackT1, Seed: seed, Steps: []Step{presetHijack()}},
		PresetOutageFeedLoss: {Name: PresetOutageFeedLoss, Seed: seed, Steps: []Step{presetOutageFeedLoss()}},
		PresetMigrationD1:    {Name: PresetMigrationD1, Seed: seed, Steps: []Step{presetMigration()}},
		PresetPaperWeek: {Name: PresetPaperWeek, Seed: seed, Steps: []Step{
			presetHijack(), presetOutageFeedLoss(), presetMigration(),
		}},
	}
}

// PresetNames lists the preset suites in stable order.
func PresetNames() []string {
	names := make([]string, 0, 4)
	for name := range Presets(1) {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
