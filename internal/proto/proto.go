// Package proto defines the application-protocol vocabulary of the study:
// the protocols IoT backends expose (Table 1's "Protocols (Ports)"
// column) and the transport/port bookkeeping the traffic analysis uses
// (Section 5.5's port-usage breakdown).
package proto

import "fmt"

// Protocol identifies an application protocol an IoT gateway endpoint
// speaks.
type Protocol uint8

// Application protocols observed across the 16 providers.
const (
	Unknown Protocol = iota
	MQTT             // plaintext MQTT
	MQTTS            // MQTT over TLS
	HTTP
	HTTPS
	AMQPS // AMQP 1.0 over TLS
	CoAP  // CoAP over UDP
	CoAPS // CoAP over DTLS
	OPCUA // Siemens' OPC-UA
	ActiveMQ
	Agnostic // PTC's protocol-agnostic tunnel
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case MQTT:
		return "MQTT"
	case MQTTS:
		return "MQTTS"
	case HTTP:
		return "HTTP"
	case HTTPS:
		return "HTTPS"
	case AMQPS:
		return "AMQPS"
	case CoAP:
		return "CoAP"
	case CoAPS:
		return "CoAPS"
	case OPCUA:
		return "OPC-UA"
	case ActiveMQ:
		return "ActiveMQ"
	case Agnostic:
		return "Agnostic"
	default:
		return "Unknown"
	}
}

// Transport is the L4 protocol.
type Transport uint8

// Transports.
const (
	TCP Transport = iota
	UDP
)

// String names the transport.
func (t Transport) String() string {
	if t == UDP {
		return "UDP"
	}
	return "TCP"
}

// PortKey identifies one (transport, port) pair — the row unit of
// Figure 11's port heatmap.
type PortKey struct {
	Transport Transport
	Port      uint16
}

// String renders e.g. "TCP/8883".
func (k PortKey) String() string { return fmt.Sprintf("%s/%d", k.Transport, k.Port) }

// TLSCapable reports whether the protocol runs a TLS handshake a scanner
// can harvest a certificate from.
func (p Protocol) TLSCapable() bool {
	switch p {
	case MQTTS, HTTPS, AMQPS:
		return true
	default:
		return false
	}
}

// DefaultTransport returns the transport the protocol conventionally uses.
func (p Protocol) DefaultTransport() Transport {
	switch p {
	case CoAP, CoAPS:
		return UDP
	default:
		return TCP
	}
}

// Well-known IANA assignments referenced throughout the paper.
const (
	PortHTTP     = 80
	PortHTTPS    = 443
	PortMQTT     = 1883
	PortMQTTS    = 8883
	PortAMQPS    = 5671
	PortCoAP     = 5683
	PortCoAPS    = 5684
	PortHTTPSAlt = 8443
	PortActiveMQ = 61616
)

// IANAName labels a PortKey the way Figure 11's y-axis does, e.g.
// "TCP/8883 (MQTTS)"; unassigned ports carry no suffix.
func IANAName(k PortKey) string {
	var label string
	switch {
	case k.Transport == TCP && k.Port == PortMQTTS:
		label = "MQTTS"
	case k.Transport == TCP && k.Port == PortHTTPS:
		label = "Web"
	case k.Transport == TCP && k.Port == PortAMQPS:
		label = "AMQP"
	case k.Transport == TCP && k.Port == PortMQTT:
		label = "MQTT"
	case k.Transport == UDP && k.Port == PortCoAPS:
		label = "CoAP"
	case k.Transport == TCP && k.Port == PortHTTP:
		label = "Web"
	case k.Transport == UDP && k.Port == PortCoAP:
		label = "CoAP"
	}
	if label == "" {
		return k.String()
	}
	return fmt.Sprintf("%s (%s)", k.String(), label)
}
