package proto

import "testing"

func TestProtocolStrings(t *testing.T) {
	cases := map[Protocol]string{
		MQTT: "MQTT", MQTTS: "MQTTS", HTTP: "HTTP", HTTPS: "HTTPS",
		AMQPS: "AMQPS", CoAP: "CoAP", CoAPS: "CoAPS", OPCUA: "OPC-UA",
		ActiveMQ: "ActiveMQ", Agnostic: "Agnostic", Unknown: "Unknown",
		Protocol(99): "Unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestTLSCapable(t *testing.T) {
	for _, p := range []Protocol{MQTTS, HTTPS, AMQPS} {
		if !p.TLSCapable() {
			t.Errorf("%v should be TLS capable", p)
		}
	}
	for _, p := range []Protocol{MQTT, HTTP, CoAP, ActiveMQ, Agnostic} {
		if p.TLSCapable() {
			t.Errorf("%v should not be TLS capable", p)
		}
	}
}

func TestDefaultTransport(t *testing.T) {
	if CoAP.DefaultTransport() != UDP || CoAPS.DefaultTransport() != UDP {
		t.Fatal("CoAP should default to UDP")
	}
	if MQTTS.DefaultTransport() != TCP || HTTPS.DefaultTransport() != TCP {
		t.Fatal("TCP protocols misrouted")
	}
	if TCP.String() != "TCP" || UDP.String() != "UDP" {
		t.Fatal("Transport.String")
	}
}

func TestPortKeyString(t *testing.T) {
	k := PortKey{Transport: TCP, Port: 8883}
	if k.String() != "TCP/8883" {
		t.Fatalf("String = %s", k)
	}
	u := PortKey{Transport: UDP, Port: 5684}
	if u.String() != "UDP/5684" {
		t.Fatalf("String = %s", u)
	}
}

func TestIANAName(t *testing.T) {
	cases := map[PortKey]string{
		{TCP, 8883}:  "TCP/8883 (MQTTS)",
		{TCP, 443}:   "TCP/443 (Web)",
		{TCP, 80}:    "TCP/80 (Web)",
		{TCP, 5671}:  "TCP/5671 (AMQP)",
		{TCP, 1883}:  "TCP/1883 (MQTT)",
		{UDP, 5684}:  "UDP/5684 (CoAP)",
		{UDP, 5683}:  "UDP/5683 (CoAP)",
		{TCP, 61616}: "TCP/61616",
		{UDP, 30023}: "UDP/30023",
	}
	for k, want := range cases {
		if got := IANAName(k); got != want {
			t.Errorf("IANAName(%v) = %q, want %q", k, got, want)
		}
	}
}

// PortKey must be usable as a map key with value semantics (the whole
// Figure 11 accounting depends on it).
func TestPortKeyAsMapKey(t *testing.T) {
	m := map[PortKey]int{}
	m[PortKey{TCP, 443}]++
	m[PortKey{TCP, 443}]++
	m[PortKey{UDP, 443}]++
	if m[PortKey{TCP, 443}] != 2 || m[PortKey{UDP, 443}] != 1 {
		t.Fatalf("map = %v", m)
	}
}
