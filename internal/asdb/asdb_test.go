package asdb

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestLookupLongestMatch(t *testing.T) {
	tbl := NewTable()
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.0.0/8"), 100))
	must(t, tbl.Announce(netip.MustParsePrefix("10.1.0.0/16"), 200))
	must(t, tbl.Announce(netip.MustParsePrefix("10.1.2.0/24"), 300))

	cases := []struct {
		addr string
		want ASN
	}{
		{"10.9.9.9", 100},
		{"10.1.9.9", 200},
		{"10.1.2.9", 300},
	}
	for _, c := range cases {
		ann, ok := tbl.Lookup(netip.MustParseAddr(c.addr))
		if !ok || ann.Origin != c.want {
			t.Fatalf("Lookup(%s) = %v/%v, want origin %d", c.addr, ann, ok, c.want)
		}
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Fatal("lookup outside table matched")
	}
}

func TestLookupIPv6(t *testing.T) {
	tbl := NewTable()
	must(t, tbl.Announce(netip.MustParsePrefix("2001:db8::/32"), 64500))
	must(t, tbl.Announce(netip.MustParsePrefix("2001:db8:1::/48"), 64501))
	ann, ok := tbl.Lookup(netip.MustParseAddr("2001:db8:1::42"))
	if !ok || ann.Origin != 64501 {
		t.Fatalf("v6 longest match = %v/%v", ann, ok)
	}
	ann, ok = tbl.Lookup(netip.MustParseAddr("2001:db8:2::42"))
	if !ok || ann.Origin != 64500 {
		t.Fatalf("v6 covering match = %v/%v", ann, ok)
	}
}

func TestLookup4In6(t *testing.T) {
	tbl := NewTable()
	must(t, tbl.Announce(netip.MustParsePrefix("203.0.113.0/24"), 7))
	ann, ok := tbl.Lookup(netip.MustParseAddr("::ffff:203.0.113.9"))
	if !ok || ann.Origin != 7 {
		t.Fatalf("4-in-6 lookup = %v/%v", ann, ok)
	}
}

func TestAnnounceReplacesOrigin(t *testing.T) {
	tbl := NewTable()
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.0.0/8"), 1))
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.0.0/8"), 2))
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after re-announce", tbl.Len())
	}
	if asn, _ := tbl.Origin(netip.MustParseAddr("10.0.0.1")); asn != 2 {
		t.Fatalf("origin = %d, want 2", asn)
	}
}

func TestWithdraw(t *testing.T) {
	tbl := NewTable()
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.0.0/8"), 1))
	must(t, tbl.Announce(netip.MustParsePrefix("10.1.0.0/16"), 2))
	if !tbl.Withdraw(netip.MustParsePrefix("10.1.0.0/16")) {
		t.Fatal("withdraw existing failed")
	}
	if tbl.Withdraw(netip.MustParsePrefix("10.2.0.0/16")) {
		t.Fatal("withdraw of absent prefix succeeded")
	}
	if asn, _ := tbl.Origin(netip.MustParseAddr("10.1.0.1")); asn != 1 {
		t.Fatalf("after withdraw, origin = %d, want fallback 1", asn)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestInvalidInputs(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Announce(netip.Prefix{}, 1); err == nil {
		t.Fatal("invalid prefix accepted")
	}
	if _, ok := tbl.Lookup(netip.Addr{}); ok {
		t.Fatal("invalid addr matched")
	}
}

func TestASRegistry(t *testing.T) {
	tbl := NewTable()
	tbl.RegisterAS(AS{Number: 16509, Name: "AMAZON-02", Org: "Amazon"})
	tbl.RegisterAS(AS{Number: 15169, Name: "GOOGLE", Org: "Google"})
	as, ok := tbl.LookupAS(16509)
	if !ok || as.Org != "Amazon" {
		t.Fatalf("LookupAS = %v/%v", as, ok)
	}
	if _, ok := tbl.LookupAS(1); ok {
		t.Fatal("unknown AS resolved")
	}
	all := tbl.ASes()
	if len(all) != 2 || all[0].Number != 15169 {
		t.Fatalf("ASes() = %v", all)
	}
	if ASN(65000).String() != "AS65000" {
		t.Fatal("ASN.String format")
	}
}

func TestDistinct(t *testing.T) {
	tbl := NewTable()
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.0.0/24"), 1))
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.1.0/24"), 1))
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.2.0/24"), 2))
	addrs := []netip.Addr{
		netip.MustParseAddr("10.0.0.5"),
		netip.MustParseAddr("10.0.1.5"),
		netip.MustParseAddr("10.0.2.5"),
		netip.MustParseAddr("192.0.2.1"), // unrouted
	}
	if got := tbl.DistinctOrigins(addrs); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("DistinctOrigins = %v", got)
	}
	if got := tbl.DistinctPrefixes(addrs); len(got) != 3 {
		t.Fatalf("DistinctPrefixes = %v", got)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	tbl := NewTable()
	must(t, tbl.Announce(netip.MustParsePrefix("10.0.0.0/8"), 100))
	must(t, tbl.Announce(netip.MustParsePrefix("2001:db8::/32"), 64500))
	var buf bytes.Buffer
	if err := tbl.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round-trip Len = %d", got.Len())
	}
	if asn, _ := got.Origin(netip.MustParseAddr("10.1.1.1")); asn != 100 {
		t.Fatalf("round-trip v4 origin = %d", asn)
	}
}

func TestReadDumpErrors(t *testing.T) {
	cases := []string{
		"10.0.0.0/8",            // missing origin
		"not-a-prefix 100",      // bad prefix
		"10.0.0.0/8 not-an-asn", // bad asn
	}
	for _, c := range cases {
		if _, err := ReadDump(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadDump(%q) accepted", c)
		}
	}
	// Comments and blank lines are fine.
	tbl, err := ReadDump(strings.NewReader("# comment\n\n10.0.0.0/8 5\n"))
	if err != nil || tbl.Len() != 1 {
		t.Fatalf("ReadDump with comments: %v len=%d", err, tbl.Len())
	}
}

// Property: trie lookup agrees with the naive linear matcher on random
// tables and probes.
func TestPropertyTrieMatchesLinear(t *testing.T) {
	f := func(seeds []uint32, probes []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		if len(probes) > 64 {
			probes = probes[:64]
		}
		tbl := NewTable()
		var anns []Announcement
		for i, s := range seeds {
			var b [4]byte
			b[0] = byte(s >> 24)
			b[1] = byte(s >> 16)
			b[2] = byte(s >> 8)
			b[3] = byte(s)
			bits := 8 + int(s%25) // /8../32
			pfx := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
			origin := ASN(i + 1)
			if err := tbl.Announce(pfx, origin); err != nil {
				return false
			}
			// Mirror replacement semantics: drop earlier identical prefix.
			replaced := false
			for j := range anns {
				if anns[j].Prefix == pfx {
					anns[j].Origin = origin
					replaced = true
					break
				}
			}
			if !replaced {
				anns = append(anns, Announcement{Prefix: pfx, Origin: origin})
			}
		}
		lin := NewLinearTable(anns)
		for _, p := range probes {
			var b [4]byte
			b[0] = byte(p >> 24)
			b[1] = byte(p >> 16)
			b[2] = byte(p >> 8)
			b[3] = byte(p)
			addr := netip.AddrFrom4(b)
			ta, tok := tbl.Lookup(addr)
			la, lok := lin.Lookup(addr)
			if tok != lok {
				return false
			}
			if tok && (ta.Prefix != la.Prefix || ta.Origin != la.Origin) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tbl := NewTable()
	for i := 0; i < 1024; i++ {
		a := netip.AddrFrom4([4]byte{byte(i >> 2), byte(i << 6), 0, 0})
		_ = tbl.Announce(netip.PrefixFrom(a, 10+i%15).Masked(), ASN(i))
	}
	addr := netip.MustParseAddr("63.64.1.2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addr)
	}
}

func BenchmarkLinearLookup(b *testing.B) {
	var anns []Announcement
	for i := 0; i < 1024; i++ {
		a := netip.AddrFrom4([4]byte{byte(i >> 2), byte(i << 6), 0, 0})
		anns = append(anns, Announcement{Prefix: netip.PrefixFrom(a, 10+i%15).Masked(), Origin: ASN(i)})
	}
	lin := NewLinearTable(anns)
	addr := netip.MustParseAddr("63.64.1.2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.Lookup(addr)
	}
}
