// Package asdb implements the BGP routing-table substrate: an AS registry,
// prefix announcements, and a longest-prefix-match table equivalent to the
// "RouteViews Prefix to AS mapping dataset from CAIDA" the paper uses to
// map IP addresses to prefixes and AS numbers (Section 4.3).
package asdb

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the conventional AS notation.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// AS describes one autonomous system.
type AS struct {
	Number ASN
	Name   string
	// Org is the operating organization, used to classify deployments as
	// Dedicated Infrastructure (provider-managed AS) or Public Resources
	// (cloud/CDN AS) in Section 4.2.
	Org string
}

// Announcement is one prefix originated by an AS.
type Announcement struct {
	Prefix netip.Prefix
	Origin ASN
}

// Table is a longest-prefix-match routing table for IPv4 and IPv6,
// implemented as two binary tries. Lookups walk at most 32 or 128 nodes,
// the classic unibit-trie bound; a micro-benchmark against linear scan
// lives in the package benchmarks (DESIGN.md ablation list).
type Table struct {
	v4, v6   *trieNode
	ases     map[ASN]AS
	prefixes int
}

type trieNode struct {
	child [2]*trieNode
	// ann is non-nil when a prefix terminates at this node.
	ann *Announcement
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{v4: &trieNode{}, v6: &trieNode{}, ases: make(map[ASN]AS)}
}

// RegisterAS records AS metadata. Announcing from an unregistered AS is
// allowed (the registry is advisory, as in the real routing system).
func (t *Table) RegisterAS(as AS) { t.ases[as.Number] = as }

// LookupAS returns the metadata registered for a number.
func (t *Table) LookupAS(n ASN) (AS, bool) {
	as, ok := t.ases[n]
	return as, ok
}

// ASes returns all registered ASes sorted by number.
func (t *Table) ASes() []AS {
	out := make([]AS, 0, len(t.ases))
	for _, as := range t.ases {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Len reports the number of installed announcements.
func (t *Table) Len() int { return t.prefixes }

// Announce installs a prefix announcement, replacing any previous origin
// for the exact same prefix (as a newer BGP update would).
func (t *Table) Announce(pfx netip.Prefix, origin ASN) error {
	if !pfx.IsValid() {
		return fmt.Errorf("asdb: invalid prefix")
	}
	pfx = pfx.Masked()
	root := t.v6
	if pfx.Addr().Is4() {
		root = t.v4
	}
	n := root
	addr := pfx.Addr().AsSlice()
	for i := 0; i < pfx.Bits(); i++ {
		b := bit(addr, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if n.ann == nil {
		t.prefixes++
	}
	n.ann = &Announcement{Prefix: pfx, Origin: origin}
	return nil
}

// Withdraw removes the announcement for exactly pfx, reporting whether an
// entry existed. Interior nodes are not pruned; tables in this simulation
// are built once and queried many times.
func (t *Table) Withdraw(pfx netip.Prefix) bool {
	pfx = pfx.Masked()
	root := t.v6
	if pfx.Addr().Is4() {
		root = t.v4
	}
	n := root
	addr := pfx.Addr().AsSlice()
	for i := 0; i < pfx.Bits(); i++ {
		n = n.child[bit(addr, i)]
		if n == nil {
			return false
		}
	}
	if n.ann == nil {
		return false
	}
	n.ann = nil
	t.prefixes--
	return true
}

// Lookup returns the longest matching announcement for addr.
func (t *Table) Lookup(addr netip.Addr) (Announcement, bool) {
	if !addr.IsValid() {
		return Announcement{}, false
	}
	addr = addr.Unmap()
	root := t.v6
	if addr.Is4() {
		root = t.v4
	}
	var best *Announcement
	n := root
	raw := addr.AsSlice()
	maxBits := addr.BitLen()
	for i := 0; ; i++ {
		if n.ann != nil {
			best = n.ann
		}
		if i >= maxBits {
			break
		}
		n = n.child[bit(raw, i)]
		if n == nil {
			break
		}
	}
	if best == nil {
		return Announcement{}, false
	}
	return *best, true
}

// Origin is shorthand for Lookup(...).Origin.
func (t *Table) Origin(addr netip.Addr) (ASN, bool) {
	ann, ok := t.Lookup(addr)
	return ann.Origin, ok
}

// Announcements returns every installed announcement, sorted by prefix
// string. Intended for dumps and tests, not hot paths.
func (t *Table) Announcements() []Announcement {
	var out []Announcement
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.ann != nil {
			out = append(out, *n.ann)
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(t.v4)
	walk(t.v6)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// DistinctOrigins returns the set of origin ASNs covering addrs — the
// paper's network-diversity metric ("typically more than one AS").
func (t *Table) DistinctOrigins(addrs []netip.Addr) []ASN {
	seen := map[ASN]struct{}{}
	for _, a := range addrs {
		if asn, ok := t.Origin(a); ok {
			seen[asn] = struct{}{}
		}
	}
	out := make([]ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctPrefixes returns the distinct announced prefixes covering addrs.
func (t *Table) DistinctPrefixes(addrs []netip.Addr) []netip.Prefix {
	seen := map[netip.Prefix]struct{}{}
	for _, a := range addrs {
		if ann, ok := t.Lookup(a); ok {
			seen[ann.Prefix] = struct{}{}
		}
	}
	out := make([]netip.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// WriteDump serializes the table in the two-column "prefix origin" text
// format RouteViews-style tools exchange.
func (t *Table) WriteDump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ann := range t.Announcements() {
		if _, err := fmt.Fprintf(bw, "%s %d\n", ann.Prefix, ann.Origin); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDump parses the format written by WriteDump into a fresh table.
func ReadDump(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("asdb: dump line %d: want 2 fields, got %d", line, len(fields))
		}
		pfx, err := netip.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("asdb: dump line %d: %v", line, err)
		}
		origin, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("asdb: dump line %d: %v", line, err)
		}
		if err := t.Announce(pfx, ASN(origin)); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// LinearTable is the naive O(n) matcher used only as an ablation baseline
// for the trie (see bench in this package).
type LinearTable struct {
	anns []Announcement
}

// NewLinearTable builds a LinearTable from announcements.
func NewLinearTable(anns []Announcement) *LinearTable {
	cp := make([]Announcement, len(anns))
	copy(cp, anns)
	return &LinearTable{anns: cp}
}

// Lookup scans every announcement for the longest match.
func (l *LinearTable) Lookup(addr netip.Addr) (Announcement, bool) {
	best := Announcement{}
	found := false
	for _, ann := range l.anns {
		if ann.Prefix.Contains(addr) {
			if !found || ann.Prefix.Bits() > best.Prefix.Bits() {
				best = ann
				found = true
			}
		}
	}
	return best, found
}

// bit extracts bit i (MSB first) from a byte slice.
func bit(b []byte, i int) int {
	return int(b[i/8]>>(7-i%8)) & 1
}
