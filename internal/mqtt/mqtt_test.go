package mqtt

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestRemainingLengthRoundTrip(t *testing.T) {
	cases := []struct {
		n    int
		wire []byte
	}{
		{0, []byte{0x00}},
		{127, []byte{0x7F}},
		{128, []byte{0x80, 0x01}},
		{16383, []byte{0xFF, 0x7F}},
		{16384, []byte{0x80, 0x80, 0x01}},
		{2097151, []byte{0xFF, 0xFF, 0x7F}},
		{268435455, []byte{0xFF, 0xFF, 0xFF, 0x7F}},
	}
	for _, c := range cases {
		got, err := AppendRemainingLength(nil, c.n)
		if err != nil {
			t.Fatalf("encode %d: %v", c.n, err)
		}
		if !bytes.Equal(got, c.wire) {
			t.Fatalf("encode %d = %x, want %x", c.n, got, c.wire)
		}
		back, err := ReadRemainingLength(bytes.NewReader(c.wire))
		if err != nil || back != c.n {
			t.Fatalf("decode %x = %d, %v", c.wire, back, err)
		}
	}
	if _, err := AppendRemainingLength(nil, 268435456); err == nil {
		t.Fatal("oversized length accepted")
	}
	if _, err := ReadRemainingLength(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})); err == nil {
		t.Fatal("5-byte length accepted")
	}
}

func TestPropertyRemainingLength(t *testing.T) {
	f := func(n uint32) bool {
		v := int(n % 268435456)
		wire, err := AppendRemainingLength(nil, v)
		if err != nil {
			return false
		}
		back, err := ReadRemainingLength(bytes.NewReader(wire))
		return err == nil && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func roundTrip(t *testing.T, wire []byte) Raw {
	t.Helper()
	raw, err := NewReader(bytes.NewReader(wire), 0).Next()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestConnectRoundTrip(t *testing.T) {
	c := &Connect{
		ClientID:     "sensor-0042",
		Username:     "device",
		Password:     []byte("s3cret"),
		KeepAlive:    30,
		CleanSession: true,
		WillTopic:    "will/sensor-0042",
		WillMessage:  []byte("gone"),
		WillQoS:      1,
		WillRetain:   true,
	}
	wire, err := c.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeConnect(roundTrip(t, wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != c.ClientID || got.Username != c.Username ||
		!bytes.Equal(got.Password, c.Password) || got.KeepAlive != 30 ||
		!got.CleanSession || got.WillTopic != c.WillTopic ||
		!bytes.Equal(got.WillMessage, c.WillMessage) || got.WillQoS != 1 || !got.WillRetain {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestConnectMinimal(t *testing.T) {
	c := &Connect{ClientID: "x", CleanSession: true}
	wire, _ := c.Append(nil)
	got, err := DecodeConnect(roundTrip(t, wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.Username != "" || got.Password != nil || got.WillTopic != "" {
		t.Fatalf("minimal connect grew fields: %+v", got)
	}
}

func TestConnackRoundTrip(t *testing.T) {
	for _, code := range []ConnackCode{ConnAccepted, ConnRefusedNotAuth, ConnRefusedVersion} {
		a := &Connack{SessionPresent: code == ConnAccepted, Code: code}
		wire, _ := a.Append(nil)
		got, err := DecodeConnack(roundTrip(t, wire))
		if err != nil {
			t.Fatal(err)
		}
		if *got != *a {
			t.Fatalf("connack mismatch: %+v vs %+v", got, a)
		}
	}
}

func TestPublishRoundTrip(t *testing.T) {
	for _, qos := range []byte{0, 1, 2} {
		p := &Publish{Topic: "iot/telemetry", Payload: []byte("{\"t\":21.5}"), QoS: qos, Retain: qos == 0, Dup: qos == 2, PacketID: 99}
		wire, err := p.Append(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodePublish(roundTrip(t, wire))
		if err != nil {
			t.Fatal(err)
		}
		if got.Topic != p.Topic || !bytes.Equal(got.Payload, p.Payload) || got.QoS != qos {
			t.Fatalf("publish mismatch at qos %d: %+v", qos, got)
		}
		if qos > 0 && got.PacketID != 99 {
			t.Fatalf("packet id lost: %+v", got)
		}
	}
	if _, err := (&Publish{Topic: "x", QoS: 3}).Append(nil); err == nil {
		t.Fatal("QoS 3 accepted")
	}
}

func TestSubscribeSubackRoundTrip(t *testing.T) {
	s := &Subscribe{PacketID: 7, Topics: []TopicFilter{{Filter: "a/+/b", QoS: 1}, {Filter: "#", QoS: 0}}}
	wire, err := s.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubscribe(roundTrip(t, wire))
	if err != nil {
		t.Fatal(err)
	}
	if got.PacketID != 7 || len(got.Topics) != 2 || got.Topics[0].Filter != "a/+/b" || got.Topics[0].QoS != 1 {
		t.Fatalf("subscribe mismatch: %+v", got)
	}
	if _, err := (&Subscribe{PacketID: 1}).Append(nil); err == nil {
		t.Fatal("empty subscribe accepted")
	}

	ack := &Suback{PacketID: 7, Codes: []byte{1, 0x80}}
	wire, _ = ack.Append(nil)
	gotAck, err := DecodeSuback(roundTrip(t, wire))
	if err != nil {
		t.Fatal(err)
	}
	if gotAck.PacketID != 7 || !bytes.Equal(gotAck.Codes, []byte{1, 0x80}) {
		t.Fatalf("suback mismatch: %+v", gotAck)
	}
}

func TestControlPackets(t *testing.T) {
	for _, tc := range []struct {
		wire []byte
		typ  PacketType
	}{
		{AppendPingreq(nil), PINGREQ},
		{AppendPingresp(nil), PINGRESP},
		{AppendDisconnect(nil), DISCONNECT},
	} {
		raw := roundTrip(t, tc.wire)
		if raw.Header.Type != tc.typ || raw.Header.RemainingLength != 0 {
			t.Fatalf("%v header = %+v", tc.typ, raw.Header)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	// Wrong packet type for decoder.
	wire, _ := (&Connack{}).Append(nil)
	if _, err := DecodeConnect(roundTrip(t, wire)); err != ErrWrongPacketType {
		t.Fatalf("err = %v", err)
	}
	// Bad protocol name.
	body := []byte{0, 4, 'M', 'Q', 'T', 'Z', 4, 2, 0, 30, 0, 1, 'x'}
	raw := Raw{Header: FixedHeader{Type: CONNECT, RemainingLength: len(body)}, Body: body}
	if _, err := DecodeConnect(raw); err != ErrBadProtocol {
		t.Fatalf("bad protocol err = %v", err)
	}
	// Truncated CONNACK.
	if _, err := DecodeConnack(Raw{Header: FixedHeader{Type: CONNACK}, Body: []byte{0}}); err != ErrMalformed {
		t.Fatalf("truncated connack err = %v", err)
	}
	// Reserved CONNECT flag set.
	bad := []byte{0, 4, 'M', 'Q', 'T', 'T', 4, 0x03, 0, 30, 0, 1, 'x'}
	if _, err := DecodeConnect(Raw{Header: FixedHeader{Type: CONNECT, RemainingLength: len(bad)}, Body: bad}); err != ErrMalformed {
		t.Fatalf("reserved flag err = %v", err)
	}
	// SUBSCRIBE with wrong fixed flags.
	sw, _ := (&Subscribe{PacketID: 1, Topics: []TopicFilter{{Filter: "t"}}}).Append(nil)
	sw[0] = byte(SUBSCRIBE)<<4 | 0x0 // clear required 0010 flags
	r, err := NewReader(bytes.NewReader(sw), 0).Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSubscribe(r); err != ErrMalformed {
		t.Fatalf("bad sub flags err = %v", err)
	}
}

func TestReaderPacketCap(t *testing.T) {
	p := &Publish{Topic: "t", Payload: make([]byte, 4096)}
	wire, _ := p.Append(nil)
	if _, err := NewReader(bytes.NewReader(wire), 128).Next(); err != ErrPacketTooLarge {
		t.Fatalf("cap err = %v", err)
	}
}

func TestPropertyDecoderRobust(t *testing.T) {
	f := func(data []byte) bool {
		rd := NewReader(bytes.NewReader(data), 1<<16)
		for {
			raw, err := rd.Next()
			if err != nil {
				return true
			}
			// Feed every typed decoder; none may panic.
			_, _ = DecodeConnect(raw)
			_, _ = DecodeConnack(raw)
			_, _ = DecodePublish(raw)
			_, _ = DecodeSubscribe(raw)
			_, _ = DecodeSuback(raw)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestClientServerHandshakeOverPipe(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	type srvResult struct {
		c    *Connect
		code ConnackCode
		err  error
	}
	resCh := make(chan srvResult, 1)
	go func() {
		c, code, err := ServerHandshake(server, RequireAuth, time.Second)
		resCh <- srvResult{c, code, err}
	}()

	ack, err := ClientHandshake(client, &Connect{ClientID: "probe", CleanSession: true}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Code != ConnRefusedNotAuth {
		t.Fatalf("anonymous probe code = %v", ack.Code)
	}
	res := <-resCh
	if res.err != nil || res.c.ClientID != "probe" || res.code != ConnRefusedNotAuth {
		t.Fatalf("server side = %+v", res)
	}
}

func TestHandshakeAccepted(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		_, _, _ = ServerHandshake(server, AcceptAll, time.Second)
		_ = Echo(server)
	}()
	ack, err := ClientHandshake(client, &Connect{ClientID: "dev1", Username: "u", Password: []byte("p"), CleanSession: true}, time.Second)
	if err != nil || ack.Code != ConnAccepted {
		t.Fatalf("handshake: %v, %+v", err, ack)
	}
	// Ping through the echo loop.
	if _, err := client.Write(AppendPingreq(nil)); err != nil {
		t.Fatal(err)
	}
	raw, err := NewReader(client, 0).Next()
	if err != nil || raw.Header.Type != PINGRESP {
		t.Fatalf("ping: %v %+v", err, raw.Header)
	}
	// Subscribe through the echo loop.
	sub := &Subscribe{PacketID: 3, Topics: []TopicFilter{{Filter: "a", QoS: 1}}}
	wire, _ := sub.Append(nil)
	if _, err := client.Write(wire); err != nil {
		t.Fatal(err)
	}
	raw, err = NewReader(client, 0).Next()
	if err != nil || raw.Header.Type != SUBACK {
		t.Fatalf("suback: %v %+v", err, raw.Header)
	}
	if _, err := client.Write(AppendDisconnect(nil)); err != nil {
		t.Fatal(err)
	}
}

func TestPacketTypeStrings(t *testing.T) {
	if CONNECT.String() != "CONNECT" || PacketType(15).String() != "TYPE15" {
		t.Fatal("PacketType.String mismatch")
	}
	if ConnAccepted.String() != "accepted" || ConnackCode(9).String() == "" {
		t.Fatal("ConnackCode.String mismatch")
	}
}

func BenchmarkConnectDecode(b *testing.B) {
	wire, _ := (&Connect{ClientID: "sensor-0042", Username: "u", Password: []byte("p"), CleanSession: true, KeepAlive: 60}).Append(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw, err := NewReader(bytes.NewReader(wire), 0).Next()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeConnect(raw); err != nil {
			b.Fatal(err)
		}
	}
}
