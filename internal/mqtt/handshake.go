package mqtt

import (
	"fmt"
	"io"
	"net"
	"time"
)

// ClientHandshake performs the client side of the MQTT session
// establishment: send CONNECT, await CONNACK. It is the protocol probe
// the scanner uses — a CONNACK (even a refusal) proves an MQTT broker
// lives behind the port.
func ClientHandshake(conn net.Conn, c *Connect, timeout time.Duration) (*Connack, error) {
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{})
	}
	wire, err := c.Append(nil)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("mqtt: write CONNECT: %w", err)
	}
	raw, err := NewReader(conn, 1<<16).Next()
	if err != nil {
		return nil, fmt.Errorf("mqtt: read CONNACK: %w", err)
	}
	return DecodeConnack(raw)
}

// ConnectPolicy decides how a broker answers a CONNECT.
type ConnectPolicy func(*Connect) ConnackCode

// AcceptAll accepts every client.
func AcceptAll(*Connect) ConnackCode { return ConnAccepted }

// RequireAuth refuses clients without credentials; IoT backends commonly
// reject anonymous scanners this way (the scan still fingerprints the
// broker because a CONNACK comes back).
func RequireAuth(c *Connect) ConnackCode {
	if c.Username == "" {
		return ConnRefusedNotAuth
	}
	return ConnAccepted
}

// ServerHandshake performs the broker side: read CONNECT, apply policy,
// write CONNACK. The decoded CONNECT is returned for logging.
func ServerHandshake(conn net.Conn, policy ConnectPolicy, timeout time.Duration) (*Connect, ConnackCode, error) {
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, 0, err
		}
		defer conn.SetDeadline(time.Time{})
	}
	raw, err := NewReader(conn, 1<<16).Next()
	if err != nil {
		return nil, 0, fmt.Errorf("mqtt: read CONNECT: %w", err)
	}
	c, err := DecodeConnect(raw)
	if err != nil {
		// Answer protocol-level rejections when possible so clients see
		// a clean refusal instead of a hang.
		if err == ErrBadProtocol {
			ack := &Connack{Code: ConnRefusedVersion}
			if wire, aerr := ack.Append(nil); aerr == nil {
				_, _ = conn.Write(wire)
			}
		}
		return nil, 0, err
	}
	if policy == nil {
		policy = AcceptAll
	}
	code := policy(c)
	ack := &Connack{Code: code}
	wire, err := ack.Append(nil)
	if err != nil {
		return c, code, err
	}
	if _, err := conn.Write(wire); err != nil {
		return c, code, fmt.Errorf("mqtt: write CONNACK: %w", err)
	}
	return c, code, nil
}

// Echo serves a tiny post-handshake session: PINGREQ→PINGRESP,
// SUBSCRIBE→SUBACK, PUBLISH swallowed, DISCONNECT/EOF ends. It gives the
// traffic simulator and tests a live broker loop.
func Echo(conn net.Conn) error {
	rd := NewReader(conn, 1<<20)
	for {
		raw, err := rd.Next()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch raw.Header.Type {
		case PINGREQ:
			if _, err := conn.Write(AppendPingresp(nil)); err != nil {
				return err
			}
		case SUBSCRIBE:
			sub, err := DecodeSubscribe(raw)
			if err != nil {
				return err
			}
			codes := make([]byte, len(sub.Topics))
			for i, tf := range sub.Topics {
				codes[i] = tf.QoS
			}
			ack := &Suback{PacketID: sub.PacketID, Codes: codes}
			wire, err := ack.Append(nil)
			if err != nil {
				return err
			}
			if _, err := conn.Write(wire); err != nil {
				return err
			}
		case PUBLISH:
			if _, err := DecodePublish(raw); err != nil {
				return err
			}
		case DISCONNECT:
			return nil
		default:
			return fmt.Errorf("mqtt: echo: unhandled %v", raw.Header.Type)
		}
	}
}
