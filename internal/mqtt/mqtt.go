// Package mqtt implements the MQTT 3.1.1 wire protocol subset the study
// needs: the fixed header with its variable-length encoding, CONNECT /
// CONNACK / PUBLISH / SUBSCRIBE / SUBACK / PINGREQ / PINGRESP / DISCONNECT
// packets, and small client/broker handshake helpers.
//
// MQTT is the protocol every provider in Table 1 claims to support; the
// scanner (internal/zgrab) uses the CONNECT/CONNACK exchange as its
// protocol probe, and internal/iotserver terminates broker-side
// handshakes. Decoding follows the gopacket DecodingLayer discipline:
// packets decode into caller structs without retaining the input buffer.
package mqtt

import (
	"errors"
	"fmt"
	"io"
)

// PacketType is the MQTT control packet type (high nibble of byte 0).
type PacketType byte

// Control packet types (MQTT 3.1.1 §2.2.1).
const (
	CONNECT     PacketType = 1
	CONNACK     PacketType = 2
	PUBLISH     PacketType = 3
	PUBACK      PacketType = 4
	SUBSCRIBE   PacketType = 8
	SUBACK      PacketType = 9
	UNSUBSCRIBE PacketType = 10
	UNSUBACK    PacketType = 11
	PINGREQ     PacketType = 12
	PINGRESP    PacketType = 13
	DISCONNECT  PacketType = 14
)

// String names the packet type.
func (t PacketType) String() string {
	names := map[PacketType]string{
		CONNECT: "CONNECT", CONNACK: "CONNACK", PUBLISH: "PUBLISH",
		PUBACK: "PUBACK", SUBSCRIBE: "SUBSCRIBE", SUBACK: "SUBACK",
		UNSUBSCRIBE: "UNSUBSCRIBE", UNSUBACK: "UNSUBACK",
		PINGREQ: "PINGREQ", PINGRESP: "PINGRESP", DISCONNECT: "DISCONNECT",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("TYPE%d", byte(t))
}

// ConnackCode is the CONNACK return code.
type ConnackCode byte

// CONNACK return codes (MQTT 3.1.1 §3.2.2.3).
const (
	ConnAccepted          ConnackCode = 0
	ConnRefusedVersion    ConnackCode = 1
	ConnRefusedIdentifier ConnackCode = 2
	ConnRefusedServer     ConnackCode = 3
	ConnRefusedBadAuth    ConnackCode = 4
	ConnRefusedNotAuth    ConnackCode = 5
)

// String names the return code.
func (c ConnackCode) String() string {
	switch c {
	case ConnAccepted:
		return "accepted"
	case ConnRefusedVersion:
		return "refused: unacceptable protocol version"
	case ConnRefusedIdentifier:
		return "refused: identifier rejected"
	case ConnRefusedServer:
		return "refused: server unavailable"
	case ConnRefusedBadAuth:
		return "refused: bad user name or password"
	case ConnRefusedNotAuth:
		return "refused: not authorized"
	default:
		return fmt.Sprintf("refused: code %d", byte(c))
	}
}

// Wire-format errors.
var (
	ErrMalformed       = errors.New("mqtt: malformed packet")
	ErrLengthOverflow  = errors.New("mqtt: remaining length exceeds 4 bytes")
	ErrPacketTooLarge  = errors.New("mqtt: packet exceeds reader limit")
	ErrWrongPacketType = errors.New("mqtt: unexpected packet type")
	ErrBadProtocol     = errors.New("mqtt: unsupported protocol name/level")
)

// FixedHeader is the 2-5 byte fixed header of every control packet.
type FixedHeader struct {
	Type  PacketType
	Flags byte
	// RemainingLength is the byte length of variable header + payload.
	RemainingLength int
}

// AppendRemainingLength appends the MQTT variable-length encoding of n
// (1-4 bytes, 7 bits per byte, continuation bit 0x80).
func AppendRemainingLength(b []byte, n int) ([]byte, error) {
	if n < 0 || n > 268435455 {
		return nil, ErrLengthOverflow
	}
	for {
		d := byte(n % 128)
		n /= 128
		if n > 0 {
			d |= 0x80
		}
		b = append(b, d)
		if n == 0 {
			return b, nil
		}
	}
}

// ReadRemainingLength decodes the variable-length remaining length from r.
func ReadRemainingLength(r io.ByteReader) (int, error) {
	mult := 1
	val := 0
	for i := 0; i < 4; i++ {
		d, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		val += int(d&0x7F) * mult
		if d&0x80 == 0 {
			return val, nil
		}
		mult *= 128
	}
	return 0, ErrLengthOverflow
}

// Connect is the CONNECT packet.
type Connect struct {
	ClientID     string
	Username     string
	Password     []byte
	KeepAlive    uint16
	CleanSession bool
	WillTopic    string
	WillMessage  []byte
	WillQoS      byte
	WillRetain   bool
}

// Connack is the CONNACK packet.
type Connack struct {
	SessionPresent bool
	Code           ConnackCode
}

// Publish is the PUBLISH packet.
type Publish struct {
	Topic    string
	Payload  []byte
	QoS      byte
	Retain   bool
	Dup      bool
	PacketID uint16 // present iff QoS > 0
}

// Subscribe is the SUBSCRIBE packet.
type Subscribe struct {
	PacketID uint16
	Topics   []TopicFilter
}

// TopicFilter pairs a filter with its requested QoS.
type TopicFilter struct {
	Filter string
	QoS    byte
}

// Suback is the SUBACK packet.
type Suback struct {
	PacketID uint16
	Codes    []byte // one per requested filter; 0x80 = failure
}

const protocolName = "MQTT"
const protocolLevel = 4 // 3.1.1

// AppendConnect serializes a CONNECT packet.
func (c *Connect) Append(b []byte) ([]byte, error) {
	var body []byte
	body = appendString(body, protocolName)
	body = append(body, protocolLevel)
	var flags byte
	if c.CleanSession {
		flags |= 0x02
	}
	if c.WillTopic != "" {
		flags |= 0x04
		flags |= (c.WillQoS & 0x3) << 3
		if c.WillRetain {
			flags |= 0x20
		}
	}
	if c.Username != "" {
		flags |= 0x80
	}
	if c.Password != nil {
		flags |= 0x40
	}
	body = append(body, flags)
	body = appendU16(body, c.KeepAlive)
	body = appendString(body, c.ClientID)
	if c.WillTopic != "" {
		body = appendString(body, c.WillTopic)
		body = appendBytes(body, c.WillMessage)
	}
	if c.Username != "" {
		body = appendString(body, c.Username)
	}
	if c.Password != nil {
		body = appendBytes(body, c.Password)
	}
	return appendPacket(b, CONNECT, 0, body)
}

// Append serializes a CONNACK packet.
func (c *Connack) Append(b []byte) ([]byte, error) {
	var body []byte
	var sp byte
	if c.SessionPresent {
		sp = 1
	}
	body = append(body, sp, byte(c.Code))
	return appendPacket(b, CONNACK, 0, body)
}

// Append serializes a PUBLISH packet.
func (p *Publish) Append(b []byte) ([]byte, error) {
	if p.QoS > 2 {
		return nil, ErrMalformed
	}
	var body []byte
	body = appendString(body, p.Topic)
	if p.QoS > 0 {
		body = appendU16(body, p.PacketID)
	}
	body = append(body, p.Payload...)
	var flags byte
	if p.Dup {
		flags |= 0x08
	}
	flags |= p.QoS << 1
	if p.Retain {
		flags |= 0x01
	}
	return appendPacket(b, PUBLISH, flags, body)
}

// Append serializes a SUBSCRIBE packet.
func (s *Subscribe) Append(b []byte) ([]byte, error) {
	if len(s.Topics) == 0 {
		return nil, ErrMalformed
	}
	var body []byte
	body = appendU16(body, s.PacketID)
	for _, tf := range s.Topics {
		body = appendString(body, tf.Filter)
		body = append(body, tf.QoS&0x3)
	}
	return appendPacket(b, SUBSCRIBE, 0x02, body) // reserved flags 0010
}

// Append serializes a SUBACK packet.
func (s *Suback) Append(b []byte) ([]byte, error) {
	var body []byte
	body = appendU16(body, s.PacketID)
	body = append(body, s.Codes...)
	return appendPacket(b, SUBACK, 0, body)
}

// AppendPingreq serializes a PINGREQ packet.
func AppendPingreq(b []byte) []byte { return append(b, byte(PINGREQ)<<4, 0) }

// AppendPingresp serializes a PINGRESP packet.
func AppendPingresp(b []byte) []byte { return append(b, byte(PINGRESP)<<4, 0) }

// AppendDisconnect serializes a DISCONNECT packet.
func AppendDisconnect(b []byte) []byte { return append(b, byte(DISCONNECT)<<4, 0) }

func appendPacket(b []byte, t PacketType, flags byte, body []byte) ([]byte, error) {
	b = append(b, byte(t)<<4|flags&0x0F)
	var err error
	b, err = AppendRemainingLength(b, len(body))
	if err != nil {
		return nil, err
	}
	return append(b, body...), nil
}

// Raw is one decoded-but-untyped control packet.
type Raw struct {
	Header FixedHeader
	Body   []byte
}

// Reader decodes control packets from a stream with a safety cap on
// packet size (scanners must not be decompressed-bombed by a hostile
// broker).
type Reader struct {
	r   io.Reader
	br  *byteReader
	max int
}

// NewReader wraps r; maxPacket caps the remaining length (0 = 1 MiB).
func NewReader(r io.Reader, maxPacket int) *Reader {
	if maxPacket <= 0 {
		maxPacket = 1 << 20
	}
	return &Reader{r: r, br: &byteReader{r: r}, max: maxPacket}
}

// Next reads one packet. The returned body is freshly allocated.
func (rd *Reader) Next() (Raw, error) {
	b0, err := rd.br.ReadByte()
	if err != nil {
		return Raw{}, err
	}
	rl, err := ReadRemainingLength(rd.br)
	if err != nil {
		return Raw{}, err
	}
	if rl > rd.max {
		return Raw{}, ErrPacketTooLarge
	}
	body := make([]byte, rl)
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return Raw{}, err
	}
	return Raw{
		Header: FixedHeader{Type: PacketType(b0 >> 4), Flags: b0 & 0x0F, RemainingLength: rl},
		Body:   body,
	}, nil
}

// byteReader adapts an io.Reader to io.ByteReader without buffering past
// the bytes it is asked for (the body must stay in the stream).
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// DecodeConnect parses a CONNECT body.
func DecodeConnect(raw Raw) (*Connect, error) {
	if raw.Header.Type != CONNECT {
		return nil, ErrWrongPacketType
	}
	body := raw.Body
	name, body, err := readString(body)
	if err != nil {
		return nil, err
	}
	if len(body) < 1 {
		return nil, ErrMalformed
	}
	level := body[0]
	body = body[1:]
	if name != protocolName || level != protocolLevel {
		return nil, ErrBadProtocol
	}
	if len(body) < 3 {
		return nil, ErrMalformed
	}
	flags := body[0]
	if flags&0x01 != 0 {
		return nil, ErrMalformed // reserved bit must be zero
	}
	c := &Connect{
		CleanSession: flags&0x02 != 0,
		KeepAlive:    uint16(body[1])<<8 | uint16(body[2]),
	}
	body = body[3:]
	c.ClientID, body, err = readString(body)
	if err != nil {
		return nil, err
	}
	if flags&0x04 != 0 { // will
		c.WillQoS = flags >> 3 & 0x3
		c.WillRetain = flags&0x20 != 0
		c.WillTopic, body, err = readString(body)
		if err != nil {
			return nil, err
		}
		c.WillMessage, body, err = readBytes(body)
		if err != nil {
			return nil, err
		}
	}
	if flags&0x80 != 0 {
		c.Username, body, err = readString(body)
		if err != nil {
			return nil, err
		}
	}
	if flags&0x40 != 0 {
		c.Password, body, err = readBytes(body)
		if err != nil {
			return nil, err
		}
	}
	if len(body) != 0 {
		return nil, ErrMalformed
	}
	return c, nil
}

// DecodeConnack parses a CONNACK body.
func DecodeConnack(raw Raw) (*Connack, error) {
	if raw.Header.Type != CONNACK {
		return nil, ErrWrongPacketType
	}
	if len(raw.Body) != 2 || raw.Body[0]&0xFE != 0 {
		return nil, ErrMalformed
	}
	return &Connack{SessionPresent: raw.Body[0]&1 != 0, Code: ConnackCode(raw.Body[1])}, nil
}

// DecodePublish parses a PUBLISH body.
func DecodePublish(raw Raw) (*Publish, error) {
	if raw.Header.Type != PUBLISH {
		return nil, ErrWrongPacketType
	}
	p := &Publish{
		Dup:    raw.Header.Flags&0x08 != 0,
		QoS:    raw.Header.Flags >> 1 & 0x3,
		Retain: raw.Header.Flags&0x01 != 0,
	}
	if p.QoS == 3 {
		return nil, ErrMalformed
	}
	var err error
	body := raw.Body
	p.Topic, body, err = readString(body)
	if err != nil {
		return nil, err
	}
	if p.QoS > 0 {
		if len(body) < 2 {
			return nil, ErrMalformed
		}
		p.PacketID = uint16(body[0])<<8 | uint16(body[1])
		body = body[2:]
	}
	p.Payload = append([]byte(nil), body...)
	return p, nil
}

// DecodeSubscribe parses a SUBSCRIBE body.
func DecodeSubscribe(raw Raw) (*Subscribe, error) {
	if raw.Header.Type != SUBSCRIBE {
		return nil, ErrWrongPacketType
	}
	if raw.Header.Flags != 0x02 {
		return nil, ErrMalformed
	}
	body := raw.Body
	if len(body) < 2 {
		return nil, ErrMalformed
	}
	s := &Subscribe{PacketID: uint16(body[0])<<8 | uint16(body[1])}
	body = body[2:]
	for len(body) > 0 {
		var filter string
		var err error
		filter, body, err = readString(body)
		if err != nil {
			return nil, err
		}
		if len(body) < 1 {
			return nil, ErrMalformed
		}
		s.Topics = append(s.Topics, TopicFilter{Filter: filter, QoS: body[0] & 0x3})
		body = body[1:]
	}
	if len(s.Topics) == 0 {
		return nil, ErrMalformed
	}
	return s, nil
}

// DecodeSuback parses a SUBACK body.
func DecodeSuback(raw Raw) (*Suback, error) {
	if raw.Header.Type != SUBACK {
		return nil, ErrWrongPacketType
	}
	if len(raw.Body) < 3 {
		return nil, ErrMalformed
	}
	return &Suback{
		PacketID: uint16(raw.Body[0])<<8 | uint16(raw.Body[1]),
		Codes:    append([]byte(nil), raw.Body[2:]...),
	}, nil
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

func appendString(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendU16(b, uint16(len(p)))
	return append(b, p...)
}

func readString(b []byte) (string, []byte, error) {
	p, rest, err := readBytes(b)
	return string(p), rest, err
}

func readBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrMalformed
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) < 2+n {
		return nil, nil, ErrMalformed
	}
	out := append([]byte(nil), b[2:2+n]...)
	return out, b[2+n:], nil
}
