package iotmap_test

import (
	"context"
	"testing"

	"iotmap"
)

// TestStageOrdering: stages must refuse to run out of order.
func TestStageOrdering(t *testing.T) {
	sys, err := iotmap.New(iotmap.Config{Seed: 3, Scale: 0.02, Lines: 500, SkipLiveScan: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.ValidateAndLocate(); err == nil {
		t.Fatal("ValidateAndLocate ran before Discover")
	}
	if err := sys.TrafficStudy(); err == nil {
		t.Fatal("TrafficStudy ran before ValidateAndLocate")
	}
	if err := sys.Disrupt(); err == nil {
		t.Fatal("Disrupt ran before TrafficStudy")
	}
	ctx := context.Background()
	if err := sys.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrafficStudy(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Disrupt(); err != nil {
		t.Fatal(err)
	}
	if sys.Disruptions == nil {
		t.Fatal("no disruption report")
	}
	if sys.OutageReport != nil {
		t.Fatal("outage report without an outage scenario")
	}
	if sys.Cascade != nil {
		t.Fatal("cascade entries without an outage scenario")
	}
}

// TestConfigDefaults: zero config must resolve to usable defaults.
func TestConfigDefaults(t *testing.T) {
	sys, err := iotmap.New(iotmap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if len(sys.World.Days) != 8 {
		t.Fatalf("default study period = %d days", len(sys.World.Days))
	}
	if got := len(sys.ProviderIDs()); got != 16 {
		t.Fatalf("providers = %d", got)
	}
	if sys.AliasOf("google") != "T2" {
		t.Fatal("alias mapping broken")
	}
}

// TestDeterministicRuns: two identical configs produce identical
// discovery sets and traffic aggregates.
func TestDeterministicRuns(t *testing.T) {
	run := func() *iotmap.System {
		sys, err := iotmap.New(iotmap.Config{Seed: 9, Scale: 0.02, Lines: 800, SkipLiveScan: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Discover(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := sys.ValidateAndLocate(); err != nil {
			t.Fatal(err)
		}
		if err := sys.TrafficStudy(); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a := run()
	defer a.Close()
	b := run()
	defer b.Close()
	for _, id := range a.ProviderIDs() {
		ua, ub := a.Discovery[id].UnionAddrs(), b.Discovery[id].UnionAddrs()
		if len(ua) != len(ub) {
			t.Fatalf("%s: union sizes differ (%d vs %d)", id, len(ua), len(ub))
		}
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("%s: address %d differs", id, i)
			}
		}
	}
	if a.Study.Downstream("T1").Total() != b.Study.Downstream("T1").Total() {
		t.Fatal("traffic totals differ across identical runs")
	}
}

// TestScenarioHelpers: the exported scenario constructors line up with
// the December study period.
func TestScenarioHelpers(t *testing.T) {
	days := iotmap.OutageStudyDays()
	if len(days) != 8 || days[0].Month() != 12 || days[0].Day() != 3 {
		t.Fatalf("outage days = %v", days[0])
	}
	sc := iotmap.AWSOutageScenario()
	start, end, err := sc.Window(days)
	if err != nil {
		t.Fatal(err)
	}
	if start.Day() != 7 || end.Day() != 7 {
		t.Fatalf("scenario window = %v..%v, want Dec 7", start, end)
	}
	study := iotmap.StudyDays()
	if len(study) != 8 || study[0].Month() != 2 || study[0].Day() != 28 {
		t.Fatalf("study days = %v", study[0])
	}
}

// TestSkipLiveScanStillDiscoversV6: without the live scan, IPv6 backends
// are still reachable through the DNS channels.
func TestSkipLiveScanStillDiscoversV6(t *testing.T) {
	sys, err := iotmap.New(iotmap.Config{Seed: 4, Scale: 0.05, SkipLiveScan: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	v6 := 0
	for _, id := range sys.ProviderIDs() {
		for _, a := range sys.Discovery[id].UnionAddrs() {
			if a.Is6() && !a.Is4In6() {
				v6++
			}
		}
	}
	if v6 == 0 {
		t.Fatal("no IPv6 discovered via DNS channels")
	}
}
