package iotmap_test

import (
	"context"
	"fmt"
	"testing"

	"iotmap"
	"iotmap/internal/core/flows"
	"iotmap/internal/figures"
	"iotmap/internal/geo"
)

// TestStageOrdering: stages must refuse to run out of order.
func TestStageOrdering(t *testing.T) {
	sys, err := iotmap.New(iotmap.Config{Seed: 3, Scale: 0.02, Lines: 500, SkipLiveScan: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.ValidateAndLocate(); err == nil {
		t.Fatal("ValidateAndLocate ran before Discover")
	}
	if err := sys.TrafficStudy(); err == nil {
		t.Fatal("TrafficStudy ran before ValidateAndLocate")
	}
	if err := sys.Disrupt(); err == nil {
		t.Fatal("Disrupt ran before TrafficStudy")
	}
	ctx := context.Background()
	if err := sys.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrafficStudy(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Disrupt(); err != nil {
		t.Fatal(err)
	}
	if sys.Disruptions == nil {
		t.Fatal("no disruption report")
	}
	if sys.OutageReport != nil {
		t.Fatal("outage report without an outage scenario")
	}
	if sys.Cascade != nil {
		t.Fatal("cascade entries without an outage scenario")
	}
}

// federationConfig is the three-vantage acceptance setup: two ISPs and
// an IXP-style feed over one discovered backend set.
func federationConfig(mode string) iotmap.Config {
	return iotmap.Config{
		Seed: 3, Scale: 0.02, Lines: 900, SkipLiveScan: true,
		TrafficMode: mode, WireStreams: 3,
		Vantages: []iotmap.VantageSpec{
			{Name: "isp-a"},
			{Name: "isp-b", Lines: 600, ContinentMix: map[geo.Continent]float64{
				geo.NorthAmerica: 4, geo.Europe: 0.25,
			}},
			{Name: "ixp", Lines: 700, SamplingRate: 1024, ScannerFraction: -1},
		},
	}
}

func runFederation(t *testing.T, mode string) *iotmap.System {
	t.Helper()
	sys, err := iotmap.New(federationConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.FederationStudy(); err == nil {
		t.Fatal("FederationStudy ran before ValidateAndLocate")
	}
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.FederationStudy(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestFederationStudyMultiVantage: a three-vantage run produces a
// coverage report whose union dominates every single vantage, an exact
// union study, and — run once per TrafficMode — identical analyses
// whether each vantage's feed stayed in memory or crossed the wire.
func TestFederationStudyMultiVantage(t *testing.T) {
	mem := runFederation(t, iotmap.TrafficModeMemory)
	fed := mem.Federation
	if len(fed.Vantages) != 3 {
		t.Fatalf("vantages = %d", len(fed.Vantages))
	}
	seeds := map[int64]bool{}
	for _, vr := range fed.Vantages {
		seeds[vr.Spec.Seed] = true
		if vr.Study == nil || vr.Contacts == nil {
			t.Fatalf("vantage %s missing outputs", vr.Spec.Name)
		}
	}
	if len(seeds) != 3 {
		t.Fatalf("vantage seeds not distinct: %v", seeds)
	}
	cov := fed.Coverage
	maxB := 0
	for _, vc := range cov.Vantages {
		if vc.Backends > maxB {
			maxB = vc.Backends
		}
	}
	if cov.Union < maxB || maxB == 0 {
		t.Fatalf("|A∪B∪C| = %d vs best vantage %d", cov.Union, maxB)
	}
	var sum float64
	for _, vr := range fed.Vantages {
		sum += vr.Study.Downstream("T1").Total()
	}
	if got := fed.Union.Downstream("T1").Total(); got != sum {
		t.Fatalf("union T1 downstream %v != per-vantage sum %v (must be exact)", got, sum)
	}

	// The same federation over the wire: every per-vantage study and the
	// coverage report must match the in-memory run byte for byte.
	wire := runFederation(t, iotmap.TrafficModeWire)
	for i, vr := range fed.Vantages {
		wvr := wire.Federation.Vantages[i]
		if wvr.WireIngest == nil || len(wvr.WireStreams) == 0 {
			t.Fatalf("vantage %s: wire run kept no ingest stats", wvr.Spec.Name)
		}
		for _, ss := range wvr.WireStreams {
			if ss.Vantage != wvr.Spec.Name {
				t.Fatalf("stream %d attributed to %q, want %q", ss.Stream, ss.Vantage, wvr.Spec.Name)
			}
		}
		msys, wsys := *mem, *wire
		msys.Study, msys.Contacts = vr.Study, vr.Contacts
		wsys.Study, wsys.Contacts = wvr.Study, wvr.Contacts
		for _, render := range []func(*iotmap.System) string{
			figures.Figure5, figures.Figure6, figures.Figure9, figures.Figure11,
		} {
			if render(&msys) != render(&wsys) {
				t.Fatalf("vantage %s: wire figures differ from memory", vr.Spec.Name)
			}
		}
	}
	if figures.FederationCoverage(mem) != figures.FederationCoverage(wire) {
		t.Fatal("coverage report differs between memory and wire federation")
	}
}

// TestFederationStudyParallelMatchesSequential: FederationStudy now
// drives its vantage worlds concurrently (Config.FederationWorkers);
// under -race this pins both that the concurrent drive is race-free and
// that it reproduces the sequential drive vantage-for-vantage — same
// figures, same scanner curves, same coverage report, same union.
func TestFederationStudyParallelMatchesSequential(t *testing.T) {
	build := func(workers int) *iotmap.System {
		cfg := federationConfig(iotmap.TrafficModeMemory)
		cfg.FederationWorkers = workers
		sys, err := iotmap.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sys.Close)
		if err := sys.Discover(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := sys.ValidateAndLocate(); err != nil {
			t.Fatal(err)
		}
		if err := sys.FederationStudy(); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	seq := build(1)
	par := build(0) // default: concurrent vantage pipelines

	if len(seq.Federation.Vantages) != len(par.Federation.Vantages) {
		t.Fatalf("vantage counts differ: %d vs %d", len(seq.Federation.Vantages), len(par.Federation.Vantages))
	}
	curve := func(cc *flows.ContactCounter) string {
		out := ""
		for _, pt := range cc.Curve([]int{10, 50, 100, 500}) {
			out += fmt.Sprintf("%d %d %.6f\n", pt.Threshold, pt.Scanners, pt.CoveragePct)
		}
		return out
	}
	renders := []func(*iotmap.System) string{
		figures.Figure5, figures.Figure6, figures.Figure9, figures.Figure11, figures.Figure12,
	}
	for i, svr := range seq.Federation.Vantages {
		pvr := par.Federation.Vantages[i]
		if svr.Spec.Name != pvr.Spec.Name {
			t.Fatalf("vantage %d: name %q vs %q", i, svr.Spec.Name, pvr.Spec.Name)
		}
		ssys, psys := *seq, *par
		ssys.Study, ssys.Contacts = svr.Study, svr.Contacts
		psys.Study, psys.Contacts = pvr.Study, pvr.Contacts
		for _, render := range renders {
			if render(&ssys) != render(&psys) {
				t.Fatalf("vantage %s: concurrent drive changed a figure", svr.Spec.Name)
			}
		}
		if curve(svr.Contacts) != curve(pvr.Contacts) {
			t.Fatalf("vantage %s: concurrent drive changed the scanner curve", svr.Spec.Name)
		}
	}
	ssys, psys := *seq, *par
	ssys.Study, ssys.Contacts = seq.Federation.Union, seq.Federation.UnionContacts
	psys.Study, psys.Contacts = par.Federation.Union, par.Federation.UnionContacts
	for _, render := range renders {
		if render(&ssys) != render(&psys) {
			t.Fatal("concurrent drive changed the union study")
		}
	}
	if figures.FederationCoverage(seq) != figures.FederationCoverage(par) {
		t.Fatal("concurrent drive changed the coverage report")
	}
}

// TestFederationDuplicateNames: duplicate vantage names must fail fast
// (they would silently merge into one vantage group).
func TestFederationDuplicateNames(t *testing.T) {
	cfg := federationConfig(iotmap.TrafficModeMemory)
	cfg.Vantages[1].Name = cfg.Vantages[0].Name
	sys, err := iotmap.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.FederationStudy(); err == nil {
		t.Fatal("duplicate vantage names accepted")
	}
}

// TestConfigDefaults: zero config must resolve to usable defaults.
func TestConfigDefaults(t *testing.T) {
	sys, err := iotmap.New(iotmap.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if len(sys.World.Days) != 8 {
		t.Fatalf("default study period = %d days", len(sys.World.Days))
	}
	if got := len(sys.ProviderIDs()); got != 16 {
		t.Fatalf("providers = %d", got)
	}
	if sys.AliasOf("google") != "T2" {
		t.Fatal("alias mapping broken")
	}
}

// TestDeterministicRuns: two identical configs produce identical
// discovery sets and traffic aggregates.
func TestDeterministicRuns(t *testing.T) {
	run := func() *iotmap.System {
		sys, err := iotmap.New(iotmap.Config{Seed: 9, Scale: 0.02, Lines: 800, SkipLiveScan: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Discover(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := sys.ValidateAndLocate(); err != nil {
			t.Fatal(err)
		}
		if err := sys.TrafficStudy(); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a := run()
	defer a.Close()
	b := run()
	defer b.Close()
	for _, id := range a.ProviderIDs() {
		ua, ub := a.Discovery[id].UnionAddrs(), b.Discovery[id].UnionAddrs()
		if len(ua) != len(ub) {
			t.Fatalf("%s: union sizes differ (%d vs %d)", id, len(ua), len(ub))
		}
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("%s: address %d differs", id, i)
			}
		}
	}
	if a.Study.Downstream("T1").Total() != b.Study.Downstream("T1").Total() {
		t.Fatal("traffic totals differ across identical runs")
	}
}

// TestScenarioHelpers: the exported scenario constructors line up with
// the December study period.
func TestScenarioHelpers(t *testing.T) {
	days := iotmap.OutageStudyDays()
	if len(days) != 8 || days[0].Month() != 12 || days[0].Day() != 3 {
		t.Fatalf("outage days = %v", days[0])
	}
	sc := iotmap.AWSOutageScenario()
	start, end, err := sc.Window(days)
	if err != nil {
		t.Fatal(err)
	}
	if start.Day() != 7 || end.Day() != 7 {
		t.Fatalf("scenario window = %v..%v, want Dec 7", start, end)
	}
	study := iotmap.StudyDays()
	if len(study) != 8 || study[0].Month() != 2 || study[0].Day() != 28 {
		t.Fatalf("study days = %v", study[0])
	}
}

// TestSkipLiveScanStillDiscoversV6: without the live scan, IPv6 backends
// are still reachable through the DNS channels.
func TestSkipLiveScanStillDiscoversV6(t *testing.T) {
	sys, err := iotmap.New(iotmap.Config{Seed: 4, Scale: 0.05, SkipLiveScan: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	v6 := 0
	for _, id := range sys.ProviderIDs() {
		for _, a := range sys.Discovery[id].UnionAddrs() {
			if a.Is6() && !a.Is4In6() {
				v6++
			}
		}
	}
	if v6 == 0 {
		t.Fatal("no IPv6 discovered via DNS channels")
	}
}
