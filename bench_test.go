// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact, per DESIGN.md's experiment index), plus
// pipeline-stage and ablation benchmarks. The shared systems are built
// once; the per-figure benchmarks measure the analysis+rendering cost of
// regenerating each artifact from the collected data.
//
// Run with: go test -bench=. -benchmem
package iotmap_test

import (
	"context"
	"io"
	"net/netip"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"iotmap"
	"iotmap/internal/collector"
	"iotmap/internal/core/discovery"
	"iotmap/internal/core/flows"
	"iotmap/internal/core/patterns"
	"iotmap/internal/core/validate"
	"iotmap/internal/dnsdb"
	"iotmap/internal/faultwire"
	"iotmap/internal/figures"
	"iotmap/internal/isp"
	"iotmap/internal/netflow"
	"iotmap/internal/scenario"
	"iotmap/internal/world"
)

var (
	onceMain sync.Once
	mainSys  *iotmap.System

	onceOutage sync.Once
	outageSys  *iotmap.System

	onceWire sync.Once
	wireSys  *iotmap.System

	onceWireOutage sync.Once
	wireOutageSys  *iotmap.System
)

func mainSystem(b testing.TB) *iotmap.System {
	b.Helper()
	onceMain.Do(func() {
		sys, err := iotmap.New(iotmap.Config{Seed: 71, Scale: 0.05, Lines: 5000})
		if err != nil {
			panic(err)
		}
		if err := sys.RunAll(context.Background()); err != nil {
			panic(err)
		}
		mainSys = sys
	})
	if mainSys == nil {
		b.Fatal("seed-71 main fixture failed to build (see the first test's panic)")
	}
	return mainSys
}

func outageSystem(b testing.TB) *iotmap.System {
	b.Helper()
	onceOutage.Do(func() {
		sys, err := iotmap.New(iotmap.Config{
			Seed: 71, Scale: 0.05, Lines: 5000,
			Days:   iotmap.OutageStudyDays(),
			Outage: iotmap.AWSOutageScenario(),
		})
		if err != nil {
			panic(err)
		}
		if err := sys.RunAll(context.Background()); err != nil {
			panic(err)
		}
		outageSys = sys
	})
	if outageSys == nil {
		b.Fatal("seed-71 outage fixture failed to build (see the first test's panic)")
	}
	return outageSys
}

// wireSystem is the seed-71 fixture in wire mode, prepared through
// ValidateAndLocate; the golden wire tests drive TrafficStudy
// themselves to vary the stream count.
func wireSystem(b testing.TB) *iotmap.System {
	b.Helper()
	onceWire.Do(func() {
		sys, err := iotmap.New(iotmap.Config{
			Seed: 71, Scale: 0.05, Lines: 5000,
			TrafficMode: iotmap.TrafficModeWire,
		})
		if err != nil {
			panic(err)
		}
		if err := sys.Discover(context.Background()); err != nil {
			panic(err)
		}
		if err := sys.ValidateAndLocate(); err != nil {
			panic(err)
		}
		wireSys = sys
	})
	if wireSys == nil {
		b.Fatal("seed-71 wire fixture failed to build (see the first test's panic)")
	}
	return wireSys
}

// wireOutageSystem is the outage-week twin of wireSystem.
func wireOutageSystem(b testing.TB) *iotmap.System {
	b.Helper()
	onceWireOutage.Do(func() {
		sys, err := iotmap.New(iotmap.Config{
			Seed: 71, Scale: 0.05, Lines: 5000,
			Days:        iotmap.OutageStudyDays(),
			Outage:      iotmap.AWSOutageScenario(),
			TrafficMode: iotmap.TrafficModeWire,
		})
		if err != nil {
			panic(err)
		}
		if err := sys.Discover(context.Background()); err != nil {
			panic(err)
		}
		if err := sys.ValidateAndLocate(); err != nil {
			panic(err)
		}
		wireOutageSys = sys
	})
	if wireOutageSys == nil {
		b.Fatal("seed-71 wire outage fixture failed to build (see the first test's panic)")
	}
	return wireOutageSys
}

func benchRender(b *testing.B, render func() string) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := render(); len(out) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkTable1(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Table1(sys) })
}

func BenchmarkTable2(b *testing.B) {
	benchRender(b, figures.Table2)
}

func BenchmarkFigure3(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure3(sys) })
}

func BenchmarkFigure4(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure4(sys) })
}

func BenchmarkFigure5(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure5(sys) })
}

func BenchmarkFigure6(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure6(sys) })
}

func BenchmarkFigure7(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure7(sys) })
}

func BenchmarkFigure8(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure8(sys) })
}

func BenchmarkFigure9(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure9(sys) })
}

func BenchmarkFigure10(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure10(sys) })
}

func BenchmarkFigure11(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure11(sys) })
}

func BenchmarkFigure12(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure12(sys) })
}

func BenchmarkFigure13(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure13(sys) })
}

func BenchmarkFigure14(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Figure14(sys) })
}

func BenchmarkFigure15(b *testing.B) {
	sys := outageSystem(b)
	benchRender(b, func() string { return figures.Figure15(sys) })
}

func BenchmarkFigure16(b *testing.B) {
	sys := outageSystem(b)
	benchRender(b, func() string { return figures.Figure16(sys) })
}

func BenchmarkSection62(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.Section62(sys) })
}

func BenchmarkValidationReport(b *testing.B) {
	sys := mainSystem(b)
	benchRender(b, func() string { return figures.ValidationReport(sys) })
}

// --- Pipeline stage benchmarks -------------------------------------------

// BenchmarkStageWorldBuild measures ground-truth construction.
func BenchmarkStageWorldBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := world.Build(world.Config{Seed: 5, Scale: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageDiscovery measures the four-channel source fusion
// (without the live IPv6 scan, whose cost is the TLS handshakes).
func BenchmarkStageDiscovery(b *testing.B) {
	sys, err := iotmap.New(iotmap.Config{Seed: 5, Scale: 0.05, SkipLiveScan: true})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Discover(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageTrafficDay measures one simulated ISP day through the
// collector.
func BenchmarkStageTrafficDay(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	net, err := isp.NewNetwork(isp.Config{Seed: 5, Lines: 5000}, w)
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := flows.NewCollector(idx, w.Days, flows.Options{SamplingRate: 100})
		net.SimulateDay(0, col.Ingest)
	}
}

// BenchmarkStageTrafficWeek measures the full single-pass sharded
// simulate→aggregate pipeline over the study week: line-major workers,
// per-line scanner classification, and the shard merge — everything
// TrafficStudy does after the backend index exists. Compare against
// 2 × StageTrafficDay × days to see the second pass gone.
func BenchmarkStageTrafficWeek(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	net, err := isp.NewNetwork(isp.Config{Seed: 5, Lines: 5000}, w)
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := flows.NewShardedAggregator(idx, w.Days, flows.Options{
			ScannerThreshold: 100,
			SamplingRate:     100,
		}, runtime.GOMAXPROCS(0))
		net.SimulateLines(agg.Shards(),
			func(shard int) func(netflow.Record) { return agg.Shard(shard).Ingest },
			func(shard int, _ *isp.Line) { agg.Shard(shard).EndLine() },
		)
		cc, col := agg.Merge()
		if len(cc.Scanners(100)) == 0 {
			b.Fatal("no scanners classified")
		}
		if col.Study().Hours() == 0 {
			b.Fatal("empty study")
		}
	}
}

// benchStageWireWeek is the wire twin of StageTrafficWeek: the same
// study week, but every line shard is framed into packet streams,
// piped, decoded, validated, rescaled, and folded back into the
// analysis by internal/collector. The delta over StageTrafficWeek is
// the full cost of making the figures come from packets instead of
// memory.
func benchStageWireWeek(b *testing.B, format isp.WireFormat) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	net, err := isp.NewNetwork(isp.Config{Seed: 5, Lines: 5000}, w)
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	opts := flows.Options{ScannerThreshold: 100, SamplingRate: 100}
	streams := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := collector.New(collector.Config{Index: idx, Days: w.Days, Opts: opts})
		if err != nil {
			b.Fatal(err)
		}
		writers, wait := col.IngestPipes(streams)
		if _, err := net.SimulateLinesToWireFormat(writers, 0, format); err != nil {
			b.Fatal(err)
		}
		if err := wait(); err != nil {
			b.Fatal(err)
		}
		cc, fcol := col.Finalize()
		if len(cc.Scanners(100)) == 0 {
			b.Fatal("no scanners classified")
		}
		if fcol.Study().Hours() == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkStageWireWeek tracks the pipeline's default wire encoding —
// columnar dictionary batches since PR 7. Its headline contract is
// StageWireWeek ≤ 1.10× StageTrafficWeek: packets-instead-of-memory
// must cost no more than 10%.
func BenchmarkStageWireWeek(b *testing.B) { benchStageWireWeek(b, isp.WireDict) }

// BenchmarkStageWireWeekDict pins the columnar dictionary format by
// name so the CI gate keeps tracking it even if the pipeline default
// ever changes. (The legacy v5 encoding's cost stays on record in
// BENCH_PR6.json and under StageWireWeekFaulty, which deliberately
// keeps the v5 framing for its richer resync semantics.)
func BenchmarkStageWireWeekDict(b *testing.B) { benchStageWireWeek(b, isp.WireDict) }

// BenchmarkStageWindowWeek is the service-mode week: the same columnar
// dictionary streams as StageWireWeek, but folding into one shared
// sliding flows.Window (hour buckets, per-flush routing) instead of
// per-stream ShardPartials, then merging the trailing view. The delta
// over StageWireWeek is the price of being able to answer "the trailing
// 7 days" at any moment.
func BenchmarkStageWindowWeek(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	net, err := isp.NewNetwork(isp.Config{Seed: 5, Lines: 5000}, w)
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	opts := flows.Options{ScannerThreshold: 100, SamplingRate: 100}
	winOpts := opts
	winOpts.SamplingRate = 1
	streams := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win, err := flows.NewWindow(idx, w.Days[0], len(w.Days)*24, winOpts)
		if err != nil {
			b.Fatal(err)
		}
		col, err := collector.New(collector.Config{Index: idx, Days: w.Days, Opts: opts, Window: win})
		if err != nil {
			b.Fatal(err)
		}
		writers, wait := col.IngestPipes(streams)
		if _, err := net.SimulateLinesToWireFormat(writers, 0, isp.WireDict); err != nil {
			b.Fatal(err)
		}
		if err := wait(); err != nil {
			b.Fatal(err)
		}
		cc, fcol := col.Finalize()
		if len(cc.Scanners(100)) == 0 {
			b.Fatal("no scanners classified")
		}
		if fcol.Study().Hours() == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkWindowSteadyState is the eviction-dominated regime the week
// benches never reach: a 30-day chronological feed through a 7-day
// window. Once the feed passes day 7 every advance retires the oldest
// hour bucket, so the measured cost is dominated by eviction plus
// recycled-arena refills — the daemon's steady state — rather than the
// cold window fill that StageWindowWeek measures. The feed is day-major
// (SimulateDay), so hours arrive nearly in order and nothing is late.
func BenchmarkWindowSteadyState(b *testing.B) {
	days := make([]time.Time, 30)
	start := world.StudyDays()[0]
	for i := range days {
		days[i] = start.AddDate(0, 0, i)
	}
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.02, Days: days})
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	winOpts := flows.Options{ScannerThreshold: 100, SamplingRate: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh Network each iteration: device homing state persists on
		// the Network across SimulateDay calls, so reusing one would feed
		// different records after the first iteration.
		net, err := isp.NewNetwork(isp.Config{Seed: 5, Lines: 2000}, w)
		if err != nil {
			b.Fatal(err)
		}
		win, err := flows.NewWindow(idx, days[0], 7*24, winOpts)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]netflow.Record, 0, 2048)
		sink := func(r netflow.Record) {
			buf = append(buf, r)
			if len(buf) == cap(buf) {
				win.IngestFlush(buf)
				buf = buf[:0]
			}
		}
		for day := range days {
			net.SimulateDay(day, sink)
		}
		if len(buf) > 0 {
			win.IngestFlush(buf)
		}
		st := win.Stats()
		if st.EvictedHours == 0 {
			b.Fatal("steady-state bench never evicted: window not advancing")
		}
		if st.LateRecords != 0 {
			b.Fatalf("chronological feed produced %d late records", st.LateRecords)
		}
		if _, s := win.Study(); s.Hours() == 0 {
			b.Fatal("empty trailing study")
		}
	}
}

// BenchmarkStageWireWeekFaulty is the wire week under fire: a seeded
// 1% frame corruption injected into every stream, ingested with the
// DropFrame self-healing policy. It deliberately keeps the legacy v5
// framing (SimulateLinesToWire): small per-packet frames give the
// richest resync workload, and the figures stay comparable with the
// BENCH_PR6.json recording. The delta over a clean v5 run is the price
// of surviving a lossy feed — resync scans, dropped frames, and
// early-ended streams included.
func BenchmarkStageWireWeekFaulty(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	net, err := isp.NewNetwork(isp.Config{Seed: 5, Lines: 5000}, w)
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	opts := flows.Options{ScannerThreshold: 100, SamplingRate: 100}
	streams := runtime.GOMAXPROCS(0)
	sc := faultwire.Uniform(5, 0.01)
	sc.Start = w.Days[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := collector.New(collector.Config{
			Index: idx, Days: w.Days, Opts: opts,
			Policy: collector.DropFrame,
			Tap: func(stream int, _ string, r io.Reader) io.Reader {
				return sc.Wrap(stream, "", r)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		writers, wait := col.IngestPipes(streams)
		if _, err := net.SimulateLinesToWire(writers, 0); err != nil {
			b.Fatal(err)
		}
		if err := wait(); err != nil {
			b.Fatal(err)
		}
		cc, fcol := col.Finalize()
		if len(cc.Scanners(100)) == 0 {
			b.Fatal("no scanners classified")
		}
		if fcol.Study().Hours() == 0 {
			b.Fatal("empty study")
		}
	}
	b.StopTimer()
	if sc.Totals().Corrupted == 0 {
		b.Fatal("the fault injector never fired")
	}
}

// BenchmarkStageFederation measures the three-vantage federated
// pipeline over the study week: two residential ISP worlds plus an
// IXP-style vantage simulate into vantage-tagged partials, which
// FederatedMerge folds into per-vantage studies, the exact union, and
// the cross-vantage coverage report. Compare against StageTrafficWeek
// to see what federating ~2.1× the single-vantage line count costs.
func BenchmarkStageFederation(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	type vantage struct {
		name string
		net  *isp.Network
	}
	var vantages []vantage
	for _, vc := range []struct {
		name string
		cfg  isp.Config
	}{
		{"isp-a", isp.Config{Seed: 5, Lines: 5000, VantageID: 0}},
		{"isp-b", isp.Config{Seed: 7, Lines: 3000, VantageID: 1}},
		{"ixp", isp.Config{Seed: 9, Lines: 2500, VantageID: 2, SamplingRate: 1024, ScannerFraction: -1}},
	} {
		net, err := isp.NewNetwork(vc.cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		vantages = append(vantages, vantage{vc.name, net})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var parts []*flows.ShardPartial
		for _, v := range vantages {
			agg := flows.NewShardedAggregator(idx, w.Days, flows.Options{
				ScannerThreshold: 100,
				SamplingRate:     v.net.Cfg.SamplingRate,
				Vantage:          v.name,
			}, runtime.GOMAXPROCS(0))
			v.net.SimulateLines(agg.Shards(),
				func(shard int) func(netflow.Record) { return agg.Shard(shard).Ingest },
				func(shard int, _ *isp.Line) { agg.Shard(shard).EndLine() },
			)
			for k := 0; k < agg.Shards(); k++ {
				parts = append(parts, agg.Shard(k))
			}
		}
		fed := flows.FederatedMerge(parts)
		cov := fed.Coverage()
		if cov.Union == 0 || fed.UnionCol.Study().Hours() == 0 {
			b.Fatal("empty federation")
		}
	}
}

// BenchmarkStageFederationParallel is StageFederation with the vantage
// worlds simulated concurrently — the drive FederationStudy now uses.
// Each vantage produces independent vantage-tagged partials, so the
// wall clock should approach the slowest single vantage rather than the
// sum of all three; the delta to StageFederation is the tracked
// speedup.
func BenchmarkStageFederationParallel(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	idx.Build()
	type vantage struct {
		name string
		net  *isp.Network
	}
	var vantages []vantage
	for _, vc := range []struct {
		name string
		cfg  isp.Config
	}{
		{"isp-a", isp.Config{Seed: 5, Lines: 5000, VantageID: 0}},
		{"isp-b", isp.Config{Seed: 7, Lines: 3000, VantageID: 1}},
		{"ixp", isp.Config{Seed: 9, Lines: 2500, VantageID: 2, SamplingRate: 1024, ScannerFraction: -1}},
	} {
		net, err := isp.NewNetwork(vc.cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		vantages = append(vantages, vantage{vc.name, net})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partsPer := make([][]*flows.ShardPartial, len(vantages))
		var wg sync.WaitGroup
		for vi, v := range vantages {
			wg.Add(1)
			go func(vi int, v vantage) {
				defer wg.Done()
				agg := flows.NewShardedAggregator(idx, w.Days, flows.Options{
					ScannerThreshold: 100,
					SamplingRate:     v.net.Cfg.SamplingRate,
					Vantage:          v.name,
				}, runtime.GOMAXPROCS(0))
				v.net.SimulateLines(agg.Shards(),
					func(shard int) func(netflow.Record) { return agg.Shard(shard).Ingest },
					func(shard int, _ *isp.Line) { agg.Shard(shard).EndLine() },
				)
				parts := make([]*flows.ShardPartial, agg.Shards())
				for k := range parts {
					parts[k] = agg.Shard(k)
				}
				partsPer[vi] = parts
			}(vi, v)
		}
		wg.Wait()
		var parts []*flows.ShardPartial
		for _, p := range partsPer {
			parts = append(parts, p...)
		}
		fed := flows.FederatedMerge(parts)
		cov := fed.Coverage()
		if cov.Union == 0 || fed.UnionCol.Study().Hours() == 0 {
			b.Fatal("empty federation")
		}
	}
}

// BenchmarkStageNetFlowExport measures the v5 wire path end-to-end:
// simulate a day, encode every IPv4 record into v5 packets, decode back.
func BenchmarkStageNetFlowExport(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	net, err := isp.NewNetwork(isp.Config{Seed: 5, Lines: 2000}, w)
	if err != nil {
		b.Fatal(err)
	}
	var recs []netflow.Record
	net.SimulateDay(0, func(r netflow.Record) {
		if r.IsV4() {
			recs = append(recs, r)
		}
	})
	if len(recs) == 0 {
		b.Fatal("no records")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(recs); off += netflow.V5MaxRecords {
			end := off + netflow.V5MaxRecords
			if end > len(recs) {
				end = len(recs)
			}
			pkt, err := netflow.EncodeV5(netflow.V5Header{}, recs[off:end])
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := netflow.DecodeV5(pkt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations (DESIGN.md §6) --------------------------------------------

// BenchmarkAblationSources compares single-source discovery against the
// full fusion; the reported custom metric is the discovered-address
// count, the quantity Figure 3 is about.
func BenchmarkAblationSources(b *testing.B) {
	w, err := world.Build(world.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	censysSvc := w.BuildCensys()
	pdns := w.BuildDNSDB()
	cases := []struct {
		name string
		in   discovery.Inputs
	}{
		{"certs-only", discovery.Inputs{Patterns: patterns.All(), Censys: censysSvc, Days: w.Days, Seed: 5}},
		{"pdns-only", discovery.Inputs{Patterns: patterns.All(), PDNS: pdns, Days: w.Days, Seed: 5}},
		{"fusion", discovery.Inputs{
			Patterns: patterns.All(), Censys: censysSvc, PDNS: pdns,
			Zones: w.ZoneStore, Views: world.VantagePointViews, Days: w.Days, Seed: 5,
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := discovery.Run(context.Background(), c.in)
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, r := range res {
					total += len(r.UnionAddrs())
				}
			}
			b.ReportMetric(float64(total), "addrs")
		})
	}
}

// BenchmarkAblationScannerThreshold sweeps the Figure 5 threshold and
// reports the excluded-line count per choice.
func BenchmarkAblationScannerThreshold(b *testing.B) {
	sys := mainSystem(b)
	for _, threshold := range []int{10, 100, 1000} {
		b.Run(benchName("threshold", threshold), func(b *testing.B) {
			b.ReportAllocs()
			var scanners int
			for i := 0; i < b.N; i++ {
				scanners = len(sys.Contacts.Scanners(threshold))
			}
			b.ReportMetric(float64(scanners), "scanners")
		})
	}
}

// BenchmarkAblationSharedThreshold sweeps the §3.4 shared-IP threshold.
func BenchmarkAblationSharedThreshold(b *testing.B) {
	sys := mainSystem(b)
	period := dnsdb.TimeRange{}
	addrs := sys.Discovery["google"].UnionAddrs()
	for _, threshold := range []int{2, 5, 20} {
		b.Run(benchName("threshold", threshold), func(b *testing.B) {
			b.ReportAllocs()
			var shared int
			for i := 0; i < b.N; i++ {
				_, sh, _ := validateFilter(addrs, sys.PDNS, period, threshold)
				shared = len(sh)
			}
			b.ReportMetric(float64(shared), "shared")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "-" + strconv.Itoa(v)
}

// validateFilter adapts the §3.4 filter for the ablation bench.
func validateFilter(addrs []netip.Addr, pdns *dnsdb.DB, tr dnsdb.TimeRange, threshold int) ([]netip.Addr, []netip.Addr, []validate.Classification) {
	return validate.FilterShared(addrs, patterns.All(), pdns, tr, threshold)
}

// BenchmarkStageDisruptionSuite measures the declarative scenario
// engine end to end: compiling the paper-week preset (hijack, regional
// outage with feed death, AS migration) and driving its per-step plus
// cumulative what-ifs through the federated pipeline against a clean
// baseline. Memory-mode federation: the suite's cost is the repeated
// federation studies, not wire framing.
func BenchmarkStageDisruptionSuite(b *testing.B) {
	sys, err := iotmap.New(iotmap.Config{
		Seed: 3, Scale: 0.02, Lines: 900, SkipLiveScan: true,
		Days:        iotmap.OutageStudyDays(),
		TrafficMode: iotmap.TrafficModeMemory, WireStreams: 3,
		Vantages: []iotmap.VantageSpec{
			{Name: "isp-a"},
			{Name: "isp-b", Lines: 600},
			{Name: "ixp", Lines: 700, SamplingRate: 1024, ScannerFraction: -1},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Discover(context.Background()); err != nil {
		b.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		b.Fatal(err)
	}
	suite := scenario.Presets(5)[scenario.PresetPaperWeek]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Federation = nil // re-run the baseline too: whole-suite cost
		res, err := sys.DisruptionSuite(suite)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Scenarios) != 4 {
			b.Fatalf("scenarios = %d", len(res.Scenarios))
		}
	}
}
