package iotmap_test

import (
	"context"
	"reflect"
	"testing"

	"iotmap"
	"iotmap/internal/core/flows"
	"iotmap/internal/figures"
)

// TestGoldenWirePolicyIdentity: the graceful error policies on a CLEAN
// wire feed are pure insurance — DropFrame and QuarantineStream must
// reproduce every Section 5 golden byte-identically, with every
// degradation counter at zero, in both the columnar dictionary and the
// legacy v5 encodings. (Abort is the policy the goldens already run
// under in TestGoldenWireFigures.)
func TestGoldenWirePolicyIdentity(t *testing.T) {
	for _, pol := range []iotmap.ErrorPolicy{iotmap.WireDropFrame, iotmap.WireQuarantineStream} {
		for _, format := range []string{iotmap.WireFormatDict, iotmap.WireFormatV5} {
			pol, format := pol, format
			t.Run(pol.String()+"/"+format, func(t *testing.T) {
				sys, err := iotmap.New(iotmap.Config{
					Seed: 71, Scale: 0.05, Lines: 5000,
					TrafficMode: iotmap.TrafficModeWire, WireStreams: 4,
					WirePolicy: pol, WireFormat: format,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer sys.Close()
				if err := sys.Discover(context.Background()); err != nil {
					t.Fatal(err)
				}
				if err := sys.ValidateAndLocate(); err != nil {
					t.Fatal(err)
				}
				if err := sys.TrafficStudy(); err != nil {
					t.Fatal(err)
				}
				if err := sys.Disrupt(); err != nil {
					t.Fatal(err)
				}
				st := sys.WireIngest
				if st.DroppedFrames != 0 || st.ResyncEvents != 0 || st.StallTimeouts != 0 ||
					st.Reconnects != 0 || st.QuarantinedStreams != 0 {
					t.Fatalf("%s: clean feed reported degradation: %+v", pol, st)
				}
				for name, render := range goldenSection5 {
					checkGolden(t, name, render(sys))
				}
			})
		}
	}
}

// chaosScenario is the acceptance fault schedule: a seeded 1% frame
// corruption across every stream, while isp-b's links additionally melt
// down — heavy bit-flip corruption until study-hour 120 (length-field
// flips force strict-decode drops, magic/type flips force resync scans)
// and total frame loss from hour 120 on, blanking whole hours at that
// vantage while its siblings keep covering them.
func chaosScenario(seed int64) *iotmap.FaultScenario {
	return &iotmap.FaultScenario{
		Seed: seed,
		Rules: []iotmap.FaultRule{
			{Stream: -1, Faults: iotmap.Faults{CorruptProb: 0.01}},
			{Stream: -1, Vantage: "isp-b", ToHour: 120, Faults: iotmap.Faults{CorruptProb: 0.25}},
			{Stream: -1, Vantage: "isp-b", FromHour: 120, Faults: iotmap.Faults{DropProb: 1}},
		},
	}
}

func runChaosFederation(t *testing.T) *iotmap.System {
	t.Helper()
	cfg := federationConfig(iotmap.TrafficModeWire)
	cfg.WirePolicy = iotmap.WireDropFrame
	cfg.WireFaults = chaosScenario(12)
	// Hour-windowed fault rules clock the study hour from v5 frame
	// headers; a dictionary batch frame carries a whole line's week, so
	// "until hour 120" has no frame-granularity meaning there. The chaos
	// schedule therefore pins the legacy v5 encoding (dict-mode fault
	// composition is covered by TestGoldenWirePolicyIdentity and the
	// collector's own fault tests).
	cfg.WireFormat = iotmap.WireFormatV5
	sys, err := iotmap.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	if err := sys.FederationStudy(); err != nil {
		t.Fatalf("chaos federation aborted under DropFrame: %v", err)
	}
	return sys
}

// TestChaosFederationAcceptance is the issue's acceptance criterion:
// with ErrorPolicy DropFrame and a seeded faultwire feed, the
// three-vantage federation study completes without aborting, every
// isp-b stream reports dropped frames AND resync scans, the coverage
// report flags isp-b as degraded, and a rerun with the same fault seed
// reproduces the figures and wire stats byte for byte.
func TestChaosFederationAcceptance(t *testing.T) {
	sys := runChaosFederation(t)

	var ispB *iotmap.VantageResult
	for _, vr := range sys.Federation.Vantages {
		if vr.Spec.Name == "isp-b" {
			ispB = vr
		}
		if vr.WireIngest == nil {
			t.Fatalf("vantage %s kept no ingest stats", vr.Spec.Name)
		}
	}
	if len(ispB.WireStreams) != 3 {
		t.Fatalf("isp-b streams = %d", len(ispB.WireStreams))
	}
	for _, ss := range ispB.WireStreams {
		if ss.DroppedFrames == 0 || ss.ResyncEvents == 0 {
			t.Fatalf("isp-b stream %d survived unscathed: dropped=%d resyncs=%d (want both nonzero)",
				ss.Stream, ss.DroppedFrames, ss.ResyncEvents)
		}
		if ss.HoursCovered >= ss.HoursTotal {
			t.Fatalf("isp-b stream %d claims full coverage despite the truncation window", ss.Stream)
		}
	}

	var bCov *flows.VantageCoverage
	for i, vc := range sys.Federation.Coverage.Vantages {
		if vc.Vantage == "isp-b" {
			bCov = &sys.Federation.Coverage.Vantages[i]
		}
	}
	if bCov == nil {
		t.Fatal("isp-b missing from the coverage report")
	}
	if !bCov.Degraded {
		t.Fatalf("isp-b not flagged degraded: %+v", *bCov)
	}
	if bCov.HoursCovered >= bCov.HoursTotal {
		t.Fatalf("isp-b hours %d/%d — degraded flag without hour loss", bCov.HoursCovered, bCov.HoursTotal)
	}
	totals := sys.Cfg.WireFaults.Totals()
	if totals.Corrupted == 0 || totals.Dropped == 0 {
		t.Fatalf("scenario injected nothing: %+v", totals)
	}

	// Same seed, fresh world: byte-identical figures and stats.
	again := runChaosFederation(t)
	if a, b := figures.FederationCoverage(sys), figures.FederationCoverage(again); a != b {
		t.Fatalf("coverage figure not reproducible:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
	for i, vr := range sys.Federation.Vantages {
		vr2 := again.Federation.Vantages[i]
		if !reflect.DeepEqual(vr.WireIngest, vr2.WireIngest) {
			t.Fatalf("vantage %s ingest stats diverged:\n%+v\n%+v", vr.Spec.Name, *vr.WireIngest, *vr2.WireIngest)
		}
		if !reflect.DeepEqual(vr.WireStreams, vr2.WireStreams) {
			t.Fatalf("vantage %s stream stats diverged", vr.Spec.Name)
		}
	}
	if a, b := sys.Cfg.WireFaults.Totals(), again.Cfg.WireFaults.Totals(); a != b {
		t.Fatalf("fault totals diverged: %+v vs %+v", a, b)
	}
}

// TestDisruptionStudy: the what-if driver leaves the baseline untouched,
// runs each scenario on an isolated copy, and reports per-vantage and
// union deltas. An outage-only scenario removes backends without
// blanking feed hours, so nobody is marked degraded.
func TestDisruptionStudy(t *testing.T) {
	cfg := federationConfig(iotmap.TrafficModeMemory)
	cfg.Days = iotmap.OutageStudyDays()
	sys, err := iotmap.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.DisruptionStudy([]iotmap.DisruptionScenario{
		{Name: "aws-outage", Outage: iotmap.AWSOutageScenario()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline == nil || res.Baseline != sys.Federation {
		t.Fatal("baseline is not the system's own federation")
	}
	baselineCov := figures.FederationCoverage(sys)
	if len(res.Scenarios) != 1 {
		t.Fatalf("scenarios = %d", len(res.Scenarios))
	}
	sc := res.Scenarios[0]
	if sc.Federation == nil || sc.Federation == res.Baseline {
		t.Fatal("scenario federation missing or aliased to the baseline")
	}
	if len(sc.Vantages) != 3 {
		t.Fatalf("vantage deltas = %d", len(sc.Vantages))
	}
	for _, vd := range sc.Vantages {
		if vd.HoursLost != 0 || vd.Degraded {
			t.Fatalf("outage-only scenario blanked feed hours at %s: %+v", vd.Vantage, vd)
		}
		if vd.DownDeltaPct > 0 {
			t.Fatalf("%s gained traffic from an outage: %+v", vd.Vantage, vd)
		}
	}
	if sc.UnionDownDeltaPct >= 0 {
		t.Fatalf("union down delta = %.2f%%, want negative", sc.UnionDownDeltaPct)
	}
	// Running the scenario must not have mutated the baseline system.
	if got := figures.FederationCoverage(sys); got != baselineCov {
		t.Fatal("DisruptionStudy mutated the baseline coverage")
	}
	if figures.DisruptionDeltas(res) == "" {
		t.Fatal("empty deltas figure")
	}
}
