// Federation: the paper's core measurement runs over two vantage
// points — a residential ISP and an IXP — and asks which backends each
// can see. This demo federates three vantage worlds over one discovered
// backend set: a European residential ISP (the paper's primary vantage),
// a smaller North-America-leaning ISP, and an IXP-style feed with
// aggressive packet sampling and no subscriber scanners. Each vantage
// streams through the single-pass sharded pipeline; the vantage-tagged
// partials merge into per-vantage studies, an exact union, and the
// cross-vantage coverage report.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"

	"iotmap"
	"iotmap/internal/analysis"
	"iotmap/internal/figures"
	"iotmap/internal/geo"
)

func main() {
	sys, err := iotmap.New(iotmap.Config{
		Seed: 17, Scale: 0.05, Lines: 4000,
		SkipLiveScan: true,
		Vantages: []iotmap.VantageSpec{
			{Name: "isp-eu"},
			{Name: "isp-na", Lines: 2500, ContinentMix: map[geo.Continent]float64{
				geo.NorthAmerica: 4, geo.Europe: 0.25,
			}},
			{Name: "ixp", Lines: 3000, SamplingRate: 2048, ScannerFraction: -1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Discover(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		log.Fatal(err)
	}
	if err := sys.FederationStudy(); err != nil {
		log.Fatal(err)
	}
	fed := sys.Federation

	fmt.Println("per-vantage worlds:")
	for _, vr := range fed.Vantages {
		fmt.Printf("  %-8s seed=%-20d lines=%-5d sampling=1:%-5d down=%s\n",
			vr.Spec.Name, vr.Spec.Seed, len(vr.Net.Lines), vr.Net.Cfg.SamplingRate,
			analysis.HumanBytes(vr.Study.Downstream("T1").Total()))
	}
	fmt.Println()
	fmt.Println(figures.FederationCoverage(sys))

	// The union is an exact merge: per-alias volumes add bit for bit.
	sum := 0.0
	for _, vr := range fed.Vantages {
		sum += vr.Study.Downstream("T1").Total()
	}
	union := fed.Union.Downstream("T1").Total()
	fmt.Printf("union T1 downstream = %s (sum of vantages: %s, exact: %v)\n",
		analysis.HumanBytes(union), analysis.HumanBytes(sum), union == sum)
	maxB := 0
	for _, vc := range fed.Coverage.Vantages {
		if vc.Backends > maxB {
			maxB = vc.Backends
		}
	}
	fmt.Printf("coverage: union %d backends >= best single vantage %d\n", fed.Coverage.Union, maxB)
}
