// Livestudy: the long-lived collector service, end to end — the
// docs/operations.md runbook as a program. One recorded NetFlow stream
// is ingested by a daemon that checkpoints and shuts down; a second
// daemon restores the checkpoint and must render byte-identical
// figures; a second stream then attaches live over the HTTP API and
// moves them. Every step talks to the service the way an operator
// would: through its HTTP endpoints.
//
//	go run ./examples/livestudy
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iotmap/internal/collector"
	"iotmap/internal/core/flows"
	"iotmap/internal/isp"
	"iotmap/internal/serve"
	"iotmap/internal/world"
)

// study holds the shared world both the exporter and the collector are
// built from — the same contract the paper's collector relied on.
type study struct {
	idx  *flows.BackendIndex
	days []time.Time
	opts flows.Options
}

func buildStudy() (*study, [][]byte, error) {
	w, err := world.Build(world.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		return nil, nil, err
	}
	n, err := isp.NewNetwork(isp.Config{Seed: 7, Lines: 400}, w)
	if err != nil {
		return nil, nil, err
	}
	idx := flows.NewBackendIndex()
	for _, s := range w.AllServers() {
		idx.Add(s.Addr, w.AliasOf(s.Provider), s.Region.Continent, s.Region.Region, s.Class.CertVisible())
	}
	var rec0, rec1 bytes.Buffer
	if _, err := n.SimulateLinesToWireFormat([]io.Writer{&rec0, &rec1}, 0, isp.WireDict); err != nil {
		return nil, nil, err
	}
	return &study{idx: idx, days: w.Days, opts: flows.Options{
		ScannerThreshold: 100,
		SamplingRate:     n.Cfg.SamplingRate,
		FocusAlias:       "T1",
		FocusRegion:      "us-east-1",
	}}, [][]byte{rec0.Bytes(), rec1.Bytes()}, nil
}

// renderFigures is a compact deterministic rendering: the Figure 5
// scanner curve plus per-provider volume and visibility. Byte equality
// of this text across the kill-resume is the restore-correctness check.
func renderFigures(cc *flows.ContactCounter, col *flows.Collector) string {
	s := col.Study()
	var b strings.Builder
	for _, p := range cc.Curve([]int{10, 100, 1000}) {
		fmt.Fprintf(&b, "  curve@%-5d %6d scanners  %6.2f%% coverage\n", p.Threshold, p.Scanners, p.CoveragePct)
	}
	for _, alias := range s.Aliases() {
		v4, v6 := s.Visibility(alias)
		fmt.Fprintf(&b, "  %-10s down %12.0f  up %12.0f  vis %.2f/%.2f\n",
			alias, s.Downstream(alias).Total(), s.Upstream(alias).Total(), v4, v6)
	}
	return b.String()
}

// daemon is one service lifetime: Run on a loopback listener, an HTTP
// client pointed at it, and a cancel that drains feeds and writes the
// final checkpoint before Run returns.
type daemon struct {
	svc    *serve.Service
	base   string
	cl     *http.Client
	cancel context.CancelFunc
	done   chan error
}

func startDaemon(st *study, ckpt string) (*daemon, error) {
	svc, err := serve.New(serve.Config{
		Index: st.idx, Days: st.days, Opts: st.opts,
		Policy: collector.DropFrame, CheckpointPath: ckpt,
		RenderFigures: renderFigures,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &daemon{
		svc:    svc,
		base:   "http://" + ln.Addr().String(),
		cl:     &http.Client{Timeout: 10 * time.Second},
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { d.done <- svc.Run(ctx, ln, nil) }()
	return d, nil
}

func (d *daemon) stop() error {
	d.cancel()
	return <-d.done
}

func (d *daemon) get(path string) string {
	resp, err := d.cl.Get(d.base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

func (d *daemon) attachFile(path, name string) {
	body, _ := json.Marshal(map[string]string{"path": path, "name": name})
	resp, err := d.cl.Post(d.base+"/streams/file", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST /streams/file: %d", resp.StatusCode)
	}
}

// waitSettled polls /streams until no feed is still running.
func (d *daemon) waitSettled() {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var out struct {
			Feeds []serve.Feed `json:"feeds"`
		}
		if err := json.Unmarshal([]byte(d.get("/streams")), &out); err != nil {
			log.Fatal(err)
		}
		running := false
		for _, f := range out.Feeds {
			if f.Status == "failed" {
				log.Fatalf("feed %q failed: %s", f.Name, f.Error)
			}
			running = running || f.Status == "running"
		}
		if !running {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("feeds never settled")
}

func main() {
	log.SetFlags(0)
	st, recs, err := buildStudy()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "livestudy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stream0 := filepath.Join(dir, "stream-0.nf")
	stream1 := filepath.Join(dir, "stream-1.nf")
	for p, rec := range map[string][]byte{stream0: recs[0], stream1: recs[1]} {
		if err := os.WriteFile(p, rec, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	ckpt := filepath.Join(dir, "ckpt")

	fmt.Println("== 1. first daemon: ingest stream-0, checkpoint on shutdown")
	d1, err := startDaemon(st, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	d1.attachFile(stream0, "stream-0")
	d1.waitSettled()
	before := d1.get("/figures")
	fmt.Print(before)
	if err := d1.stop(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   shutdown wrote %s (%d bytes)\n\n", ckpt, info.Size())

	fmt.Println("== 2. second daemon: restore the checkpoint, figures must not move")
	d2, err := startDaemon(st, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	if !d2.svc.Restored {
		log.Fatal("second daemon did not restore the checkpoint")
	}
	after := d2.get("/figures")
	if after != before {
		log.Fatal("restored figures differ from pre-shutdown figures")
	}
	fmt.Println("   /figures byte-identical across the restart ✓")

	fmt.Println("\n== 3. live-attach stream-1 over the HTTP API")
	d2.attachFile(stream1, "stream-1")
	d2.waitSettled()
	final := d2.get("/figures")
	if final == after {
		log.Fatal("second stream did not change the figures")
	}
	fmt.Print(final)

	fmt.Println("\n== 4. window ledger")
	var win struct {
		Epoch   string `json:"epoch"`
		End     string `json:"end"`
		Buckets []struct {
			Records uint64
		} `json:"buckets"`
		Stats struct {
			PreWindowRecords, LateRecords, EvictedHours, EvictedRecords uint64
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(d2.get("/window")), &win); err != nil {
		log.Fatal(err)
	}
	var records uint64
	for _, b := range win.Buckets {
		records += b.Records
	}
	fmt.Printf("   %s .. %s: %d live hour buckets, %d records\n",
		win.Epoch, win.End, len(win.Buckets), records)
	fmt.Printf("   dropped: %d pre-window, %d late; evicted: %d hours, %d records\n",
		win.Stats.PreWindowRecords, win.Stats.LateRecords,
		win.Stats.EvictedHours, win.Stats.EvictedRecords)
	if err := d2.stop(); err != nil {
		log.Fatal(err)
	}
}
