// Trafficstudy: the Section 5 analysis on its own — simulate the
// European ISP's week, exclude scanners, and print activity shapes,
// volume relations, and port mixes per anonymized platform.
//
//	go run ./examples/trafficstudy
package main

import (
	"context"
	"fmt"
	"log"

	"iotmap"
	"iotmap/internal/analysis"
)

func main() {
	sys, err := iotmap.New(iotmap.Config{Seed: 11, Scale: 0.05, Lines: 8000})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	if err := sys.Discover(ctx); err != nil {
		log.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrafficStudy(); err != nil {
		log.Fatal(err)
	}
	study := sys.Study

	// Scanner exclusion sweep (Figure 5's two axes).
	fmt.Println("scanner exclusion sweep:")
	for _, pt := range sys.Contacts.Curve([]int{10, 100, 1000}) {
		fmt.Printf("  threshold %4d: coverage %.1f%%, %d lines excluded\n",
			pt.Threshold, pt.CoveragePct, pt.Scanners)
	}

	fmt.Println("\nper-platform view (anonymized):")
	fmt.Printf("  %-5s %10s %10s %12s %7s %s\n", "alias", "lines", "visible%", "volume", "ratio", "top port")
	for _, alias := range study.Aliases() {
		l4, _ := study.LineCount(alias)
		if l4 == 0 {
			continue
		}
		vis, _ := study.Visibility(alias)
		vol := study.Downstream(alias).Total()
		top := ""
		if shares := study.PortShares(alias); len(shares) > 0 {
			top = fmt.Sprintf("%s (%.0f%%)", shares[0].Port, 100*shares[0].Share)
		}
		fmt.Printf("  %-5s %10d %9.1f%% %12s %7.2f %s\n",
			alias, l4, vis, analysis.HumanBytes(vol), study.OverallRatio(alias), top)
	}

	lines := study.LineContinentShares()
	fmt.Printf("\nwhere the data goes: EU-only=%.0f%%  US-only=%.0f%%  EU+US=%.0f%%  Asia/other=%.0f%%\n",
		100*lines["EU-only"], 100*lines["US-only"], 100*lines["EU+US"], 100*lines["Asia/Other"])
}
