// Wirestudy: the Section 5 traffic analysis computed from packets
// instead of memory. The same system runs twice — once with the
// in-memory aggregation pipeline and once in wire mode, where every
// line shard's week crosses framed NetFlow v5 packet streams through
// internal/collector — and the demo proves the figures come out
// byte-identical, then shows what actually crossed the wire.
//
//	go run ./examples/wirestudy
package main

import (
	"context"
	"fmt"
	"log"

	"iotmap"
	"iotmap/internal/figures"
)

func run(mode string, streams int) (*iotmap.System, error) {
	sys, err := iotmap.New(iotmap.Config{
		Seed: 11, Scale: 0.05, Lines: 4000,
		TrafficMode: mode, WireStreams: streams,
		SkipLiveScan: true,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Discover(context.Background()); err != nil {
		return nil, err
	}
	if err := sys.ValidateAndLocate(); err != nil {
		return nil, err
	}
	if err := sys.TrafficStudy(); err != nil {
		return nil, err
	}
	return sys, nil
}

func main() {
	mem, err := run(iotmap.TrafficModeMemory, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer mem.Close()
	wire, err := run(iotmap.TrafficModeWire, 6)
	if err != nil {
		log.Fatal(err)
	}
	defer wire.Close()

	identical := true
	for _, render := range []func(*iotmap.System) string{
		figures.Figure5, figures.Figure6, figures.Figure7, figures.Figure8,
		figures.Figure9, figures.Figure10, figures.Figure11, figures.Figure12,
		figures.Figure13, figures.Figure14,
	} {
		if render(mem) != render(wire) {
			identical = false
		}
	}
	fmt.Printf("figures byte-identical across memory and wire paths: %v\n\n", identical)

	ex, in := wire.WireExport, wire.WireIngest
	fmt.Printf("what crossed the wire (%d concurrent streams):\n", ex.Streams)
	fmt.Printf("  exported:  %d frames, %d v5 packets, %d v4 + %d v6 records, %d line flushes\n",
		ex.Frames, ex.V5Packets, ex.V4Records, ex.V6Records, ex.Flushes)
	fmt.Printf("  collected: %d frames, %d v5 packets, %d v4 + %d v6 records\n",
		in.Frames, in.V5Packets, in.V4Records, in.V6Records)
	fmt.Printf("  integrity: %d clamped counters on export, %d saturated seen by the collector, %d rate mismatches\n",
		ex.Clamped, in.SaturatedCounters, in.RateMismatches)
	fmt.Printf("  volume restored via Sampler.Scale: %.2f GB estimated\n\n", float64(in.ScaledBytes)/1e9)

	fmt.Println(figures.Figure8(wire))
	fmt.Println(figures.Figure9(wire))
}
