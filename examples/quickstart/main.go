// Quickstart: build a small synthetic Internet, run the complete
// methodology (discovery → validation → footprint → traffic study →
// disruptions), and print a one-screen summary.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"iotmap"
)

func main() {
	// A laptop-sized run: 5% of the paper's deployment sizes, 4000
	// subscriber lines. Seeded, so the output is reproducible.
	sys, err := iotmap.New(iotmap.Config{Seed: 7, Scale: 0.05, Lines: 4000})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if err := sys.RunAll(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== discovery ==")
	totalV4, totalV6 := 0, 0
	for _, id := range sys.ProviderIDs() {
		row := sys.Rows[id]
		totalV4 += row.V4Addrs
		totalV6 += row.V6Addrs
		fmt.Printf("  %-12s (%s)  %4d IPv4 + %3d IPv6 backends, %2d locations in %2d countries, %s\n",
			id, sys.AliasOf(id), row.V4Addrs, row.V6Addrs, row.Locations, row.Countries, row.Strategy)
	}
	fmt.Printf("  total: %d IPv4 + %d IPv6 backend IPs\n\n", totalV4, totalV6)

	fmt.Println("== ISP traffic study ==")
	fmt.Printf("  subscriber lines simulated: %d (%d with IoT devices)\n",
		len(sys.Net.Lines), sys.Net.IoTLines())
	down, up := sys.Study.DailyECDFs()
	fmt.Printf("  per-line daily volume: P(down<=10MB)=%.2f  P(up<=10MB)=%.2f\n",
		down.At(10e6), up.At(10e6))
	tr := sys.Study.TrafficContinentShares()
	fmt.Printf("  traffic by server continent: EU=%.0f%% US=%.0f%% Asia=%.0f%%\n",
		100*tr["EU"], 100*tr["NA"], 100*tr["AS"])

	fmt.Println("\n== disruptions ==")
	d := sys.Disruptions
	fmt.Printf("  BGP: %d leaks / %d hijacks / %d AS outages — %d touched a backend\n",
		d.Leaks, d.Hijacks, d.ASOutages, len(d.Impacts))
	fmt.Printf("  blocklists: %d backend IPs listed across %d providers\n",
		len(d.Hits), len(d.HitsPerProvider))
}
