// Outagedrill: replay the December 7, 2021 AWS us-east-1 outage against
// the simulated ISP and report what the paper's Figures 15/16 show —
// then run a what-if drill with a full-day outage, quantifying the
// cascading-effects question Section 6.2 raises.
//
//	go run ./examples/outagedrill
package main

import (
	"context"
	"fmt"
	"log"

	"iotmap"
	"iotmap/internal/outage"
)

func run(sc *outage.Scenario) (iotmap.OutageReport, error) {
	sys, err := iotmap.New(iotmap.Config{
		Seed:   13,
		Scale:  0.05,
		Lines:  6000,
		Days:   iotmap.OutageStudyDays(),
		Outage: sc,
	})
	if err != nil {
		return iotmap.OutageReport{}, err
	}
	defer sys.Close()
	if err := sys.RunAll(context.Background()); err != nil {
		return iotmap.OutageReport{}, err
	}
	return *sys.OutageReport, nil
}

func main() {
	// Drill 1: the historical event.
	base := iotmap.AWSOutageScenario()
	rep, err := run(base)
	if err != nil {
		log.Fatal(err)
	}
	printReport("historical Dec 7 outage (8h window)", rep)

	// Drill 2: what if the same failure had lasted the whole day?
	longer := *base
	longer.Name = "what-if-full-day"
	longer.StartHour, longer.EndHour = 0, 24
	rep2, err := run(&longer)
	if err != nil {
		log.Fatal(err)
	}
	printReport("what-if: full-day outage", rep2)
}

func printReport(title string, rep iotmap.OutageReport) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("  window: %s .. %s UTC\n",
		rep.WindowStart.Format("Jan 2 15:04"), rep.WindowEnd.Format("Jan 2 15:04"))
	fmt.Printf("  us-east-1 downstream drop: %.1f%% (below prior minimum: %v)\n",
		rep.RegionDropPct, rep.BelowPriorMin)
	fmt.Printf("  EU downstream dip:         %.1f%%\n", rep.EUDipPct)
	fmt.Printf("  us-east-1 line dip:        %.1f%% (devices keep retrying)\n", rep.RegionLinesDipPct)
	fmt.Printf("  EU line dip:               %.1f%%\n", rep.EULinesDipPct)
	fmt.Printf("  EU/us-east volume factor:  %.1fx\n\n", rep.EUOverRegionFactor)
}
