// Scancampaign: run the ethically-constrained IPv6 measurement campaign
// of Section 3.3/3.7 in isolation — deploy the world's IPv6 gateways
// onto the virtual fabric, sample a hitlist, and probe with rate
// limiting and randomized target order, then compare what certificates
// alone could and could not see.
//
//	go run ./examples/scancampaign
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"iotmap/internal/certmodel"
	"iotmap/internal/core/patterns"
	"iotmap/internal/proto"
	"iotmap/internal/vnet"
	"iotmap/internal/world"
	"iotmap/internal/zgrab"
)

func main() {
	w, err := world.Build(world.Config{Seed: 17, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fabric := vnet.New()
	defer fabric.Close()
	ca, err := certmodel.NewCA("Scan Campaign CA")
	if err != nil {
		log.Fatal(err)
	}
	if err := w.DeployServers(fabric, ca, w.V6Servers()); err != nil {
		log.Fatal(err)
	}

	// 80% hitlist coverage: the scan can only find what the hitlist
	// knows about (the paper's stated IPv6 limitation).
	hl := w.BuildHitlist(0.8)
	var targets []zgrab.Target
	for _, e := range hl.WithIoTPorts() {
		for _, port := range e.Ports {
			var pr proto.Protocol
			switch port {
			case 443:
				pr = proto.HTTPS
			case 8883:
				pr = proto.MQTTS
			case 1883:
				pr = proto.MQTT
			case 5671:
				pr = proto.AMQPS
			default:
				continue
			}
			targets = append(targets, zgrab.Target{Addr: e.Addr, Port: port, Protocol: pr})
		}
	}

	// Ethical controls: one probe per target, randomized order, global
	// rate limit (Section 3.7: "a single packet per destination" with a
	// "randomized spread of load").
	sc := &zgrab.Scanner{
		Dialer:      fabric,
		Timeout:     2 * time.Second,
		Rate:        500,
		Concurrency: 8,
		Seed:        17,
	}
	start := time.Now()
	results := sc.Scan(context.Background(), targets)
	elapsed := time.Since(start)

	connected, tlsDone, withCert := 0, 0, 0
	perProvider := map[string]int{}
	for _, r := range results {
		if r.Connected {
			connected++
		}
		if r.TLSDone {
			tlsDone++
		}
		if r.Cert == nil {
			continue
		}
		withCert++
		for _, p := range patterns.All() {
			if r.Cert.MatchesRegexp(p.Regex) {
				perProvider[p.ProviderID()]++
			}
		}
	}
	fmt.Printf("targets: %d  (hitlist %d of %d IPv6 gateways)\n",
		len(targets), hl.Len(), len(w.V6Servers()))
	fmt.Printf("connected: %d, TLS handshakes completed: %d, certificates: %d\n",
		connected, tlsDone, withCert)
	fmt.Printf("elapsed: %v under the %.0f probes/s limit\n\n", elapsed.Round(time.Millisecond), sc.Rate)

	fmt.Println("provider attribution via certificate SANs:")
	for id, n := range perProvider {
		fmt.Printf("  %-10s %d endpoints\n", id, n)
	}
	fmt.Println("\nnote: SNI-guarded and mutual-TLS endpoints yield no certificates —")
	fmt.Println("those backends are only discoverable through the DNS channels.")
}
