// Chaos study: production NetFlow feeds are lossy — exporters restart
// mid-week, TCP sessions drop, frames arrive truncated or bit-flipped.
// This demo runs a 3-vantage wire-mode federation twice: once clean,
// once with a deterministic fault schedule (1% frame corruption on
// every isp-b stream, plus its feed dying outright Wednesday 14:00)
// while the collector runs the DropFrame self-healing policy. The study
// completes instead of aborting; the per-stream stats show dropped
// frames and resync scans, the coverage report flags isp-b as degraded,
// and because every fault draw is seeded, a rerun reproduces the
// damaged figures byte for byte.
//
//	go run ./examples/chaosstudy
package main

import (
	"context"
	"fmt"
	"log"

	"iotmap"
	"iotmap/internal/analysis"
	"iotmap/internal/figures"
)

func main() {
	sys, err := iotmap.New(iotmap.Config{
		Seed: 17, Scale: 0.05, Lines: 3000,
		SkipLiveScan: true,
		TrafficMode:  iotmap.TrafficModeWire,
		WireStreams:  3,
		WirePolicy:   iotmap.WireDropFrame,
		Vantages: []iotmap.VantageSpec{
			{Name: "isp-a"},
			{Name: "isp-b", Lines: 2000},
			{Name: "ixp", Lines: 2500, SamplingRate: 1024, ScannerFraction: -1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Discover(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		log.Fatal(err)
	}

	chaos := &iotmap.FaultScenario{
		Seed: 99,
		Rules: []iotmap.FaultRule{
			{Stream: -1, Vantage: "isp-b", Faults: iotmap.Faults{CorruptProb: 0.01}},
			{Stream: -1, Vantage: "isp-b", FromHour: 2*24 + 14, Faults: iotmap.Faults{Kill: true}},
		},
	}
	res, err := sys.DisruptionStudy([]iotmap.DisruptionScenario{
		{Name: "wire-chaos", Faults: chaos},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("clean baseline:")
	fmt.Println(figures.FederationCoverage(sys))

	sc := res.Scenarios[0]
	fmt.Println("under chaos (DropFrame policy):")
	tmp := *sys
	tmp.Federation = sc.Federation
	fmt.Println(figures.FederationCoverage(&tmp))
	fmt.Println(figures.DisruptionDeltas(res))

	fmt.Println("per-stream damage (isp-b only):")
	for _, vr := range sc.Federation.Vantages {
		if vr.Spec.Name != "isp-b" {
			continue
		}
		for _, ss := range vr.WireStreams {
			fmt.Printf("  stream %d: %d frames, %d dropped, %d resyncs, %d/%d hours covered\n",
				ss.Stream, ss.Frames, ss.DroppedFrames, ss.ResyncEvents, ss.HoursCovered, ss.HoursTotal)
		}
		down := studyDown(vr)
		fmt.Printf("  isp-b downstream under chaos: %s\n", analysis.HumanBytes(down))
	}
	fmt.Printf("injected faults: %+v\n", chaos.Totals())
}

func studyDown(vr *iotmap.VantageResult) float64 {
	total := 0.0
	for _, alias := range vr.Study.Aliases() {
		if s := vr.Study.Downstream(alias); s != nil {
			total += s.Total()
		}
	}
	return total
}
