// Footprint: map one provider end-to-end and show how each observation
// channel contributed — the per-provider story behind Figure 3 and
// Table 1. Defaults to Amazon (the largest fleet); pass another provider
// ID as the first argument.
//
//	go run ./examples/footprint [provider-id]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"iotmap"
	"iotmap/internal/core/discovery"
	"iotmap/internal/core/footprint"
)

func main() {
	providerID := "amazon"
	if len(os.Args) > 1 {
		providerID = os.Args[1]
	}

	sys, err := iotmap.New(iotmap.Config{Seed: 7, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	if err := sys.Discover(ctx); err != nil {
		log.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		log.Fatal(err)
	}

	res := sys.Discovery[providerID]
	if res == nil {
		log.Fatalf("unknown provider %q (see Table 1 for IDs)", providerID)
	}
	union := res.Union()
	fmt.Printf("provider %s: %d addresses discovered over %d days\n",
		providerID, len(union), len(res.Days))

	perSource := map[string]int{}
	for _, info := range union {
		switch {
		case info.Sources.Count() > 1:
			perSource["multiple sources"]++
		case info.Sources.Has(discovery.SrcCert):
			perSource["certificates only"]++
		case info.Sources.Has(discovery.SrcPDNS):
			perSource["passive DNS only"]++
		case info.Sources.Has(discovery.SrcActive):
			perSource["active DNS only"]++
		}
	}
	for _, k := range []string{"certificates only", "passive DNS only", "active DNS only", "multiple sources"} {
		fmt.Printf("  %-18s %4d\n", k, perSource[k])
	}
	fmt.Printf("  multi-VP resolution gain: +%.1f%%\n", 100*res.VPGain)

	fmt.Printf("\nvalidated: %d dedicated, %d shared (filtered out)\n",
		len(sys.Dedicated[providerID]), len(sys.Shared[providerID]))

	// Geolocation: hint-derived vs majority-vote locations.
	located := sys.Located[providerID]
	hints, votes := 0, 0
	byCountry := map[string]int{}
	for _, l := range located {
		switch l.Source {
		case footprint.LocHint:
			hints++
		case footprint.LocVote:
			votes++
		}
		if l.Location.Country != "" {
			byCountry[l.Location.Country]++
		}
	}
	fmt.Printf("geolocation: %d via domain hints, %d via majority vote\n", hints, votes)
	fmt.Printf("countries: ")
	for c, n := range byCountry {
		fmt.Printf("%s=%d ", c, n)
	}
	fmt.Println()

	row := sys.Rows[providerID]
	fmt.Printf("\nTable 1 row: %s\n", row)
}
