module iotmap

go 1.22
