package iotmap_test

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"iotmap"
	"iotmap/internal/asdb"
	"iotmap/internal/bgpstream"
	"iotmap/internal/figures"
	"iotmap/internal/scenario"
)

// suiteFederation builds the three-vantage federation the scenario
// suites run over, in wire mode with the v5 encoding pinned: the
// hour-windowed fault rules a suite compiles (feed death mid-week)
// clock the study hour from v5 frame headers, which dictionary batches
// don't carry per frame.
func suiteFederation(t *testing.T) *iotmap.System {
	t.Helper()
	cfg := federationConfig(iotmap.TrafficModeWire)
	cfg.Days = iotmap.OutageStudyDays()
	cfg.WirePolicy = iotmap.WireDropFrame
	cfg.WireFormat = iotmap.WireFormatV5
	sys, err := iotmap.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// coverageOf renders the federation-coverage figure for one scenario's
// federation without disturbing the baseline system.
func coverageOf(sys *iotmap.System, fed *iotmap.FederationResult) string {
	tmp := *sys
	tmp.Federation = fed
	return figures.FederationCoverage(&tmp)
}

// TestEmptySuiteMatchesBaseline: a suite with no steps is the identity
// what-if — DisruptionSuite's output is exactly the clean
// FederationStudy baseline, byte for byte.
func TestEmptySuiteMatchesBaseline(t *testing.T) {
	cfg := federationConfig(iotmap.TrafficModeMemory)
	cfg.Days = iotmap.OutageStudyDays()

	clean, err := iotmap.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clean.Close)
	if err := clean.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := clean.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	if err := clean.FederationStudy(); err != nil {
		t.Fatal(err)
	}

	sys, err := iotmap.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidateAndLocate(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.DisruptionSuite(scenario.Suite{Name: "empty", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 0 {
		t.Fatalf("empty suite compiled %d scenarios", len(res.Scenarios))
	}
	if res.Baseline == nil || res.Baseline != sys.Federation {
		t.Fatal("baseline is not the system's own federation")
	}
	if len(res.Events) != 0 || len(res.Impacts) != 0 {
		t.Fatalf("empty suite injected events (%d) or impacts (%d)", len(res.Events), len(res.Impacts))
	}
	if a, b := figures.FederationCoverage(clean), figures.FederationCoverage(sys); a != b {
		t.Fatalf("empty-suite baseline diverged from a clean FederationStudy:\n--- clean:\n%s\n--- suite:\n%s", a, b)
	}
}

// TestScenarioSuite drives each preset shape through the engine over
// the wire-mode federation and checks its semantic fingerprint:
// hijacks hit exactly the vantages that accepted the route, a regional
// outage with feed loss degrades the vantage that lost its feed, and a
// pure control-plane migration changes nothing at all.
func TestScenarioSuite(t *testing.T) {
	run := func(t *testing.T, name string) (*iotmap.System, *iotmap.SuiteStudyResult) {
		t.Helper()
		sys := suiteFederation(t)
		suite, ok := scenario.Presets(5)[name]
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		res, err := sys.DisruptionSuite(suite)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Scenarios) != 1 {
			t.Fatalf("scenarios = %d, want 1", len(res.Scenarios))
		}
		return sys, res
	}
	deltaFor := func(t *testing.T, sc iotmap.ScenarioResult, vantage string) iotmap.VantageDelta {
		t.Helper()
		for _, vd := range sc.Vantages {
			if vd.Vantage == vantage {
				return vd
			}
		}
		t.Fatalf("vantage %s missing from scenario %s", vantage, sc.Name)
		return iotmap.VantageDelta{}
	}

	t.Run("hijack", func(t *testing.T) {
		_, res := run(t, scenario.PresetHijackT1)
		sc := res.Scenarios[0]
		if vd := deltaFor(t, sc, "isp-a"); vd.DownDeltaPct >= 0 {
			t.Fatalf("isp-a accepted the hijack but kept its traffic: %+v", vd)
		}
		if vd := deltaFor(t, sc, "ixp"); vd.DownDeltaPct > 0 {
			t.Fatalf("ixp gained traffic under a blackhole hijack: %+v", vd)
		}
		// isp-b's upstream rejected the bogus route: its run is
		// bit-identical to the baseline.
		if vd := deltaFor(t, sc, "isp-b"); vd.DownDeltaPct != 0 || vd.HoursLost != 0 || vd.Backends != vd.BaselineBackends {
			t.Fatalf("isp-b was not part of the hijack's visibility set: %+v", vd)
		}
		if sc.UnionDownDeltaPct >= 0 {
			t.Fatalf("union down delta = %.2f%%, want negative", sc.UnionDownDeltaPct)
		}
		for _, vd := range sc.Vantages {
			if vd.Degraded || vd.HoursLost != 0 {
				t.Fatalf("a traffic-plane hijack blanked feed hours at %s: %+v", vd.Vantage, vd)
			}
		}
		if sc.FaultTotals != nil {
			t.Fatalf("hijack scenario carries a wire-fault ledger: %+v", *sc.FaultTotals)
		}
		// The control-plane view: announcements went out and they cover
		// monitored backend space.
		if len(res.Events) == 0 {
			t.Fatal("hijack suite injected no BGP events")
		}
		if len(res.Impacts) == 0 {
			t.Fatal("hijack of a provider's own prefixes touched no monitored backend")
		}
	})

	t.Run("outage-feeddeath", func(t *testing.T) {
		sys, res := run(t, scenario.PresetOutageFeedLoss)
		sc := res.Scenarios[0]
		vd := deltaFor(t, sc, "isp-b")
		if vd.HoursLost == 0 {
			t.Fatalf("isp-b's feed died mid-week but lost no hours: %+v", vd)
		}
		if !vd.Degraded {
			t.Fatalf("isp-b not flagged degraded after feed death: %+v", vd)
		}
		if sc.UnionDownDeltaPct >= 0 {
			t.Fatalf("union down delta = %.2f%% despite a regional outage", sc.UnionDownDeltaPct)
		}
		if sc.FaultTotals == nil || !sc.FaultTotals.Killed {
			t.Fatalf("fault ledger missing the feed kill: %+v", sc.FaultTotals)
		}
		// The scenario's own coverage report carries the degraded flag.
		var flagged bool
		for _, vc := range sc.Federation.Coverage.Vantages {
			if vc.Vantage == "isp-b" && vc.Degraded {
				flagged = true
			}
		}
		if !flagged {
			t.Fatal("scenario coverage report does not flag isp-b degraded")
		}
		// The healthy vantages keep their feed hours.
		for _, name := range []string{"isp-a", "ixp"} {
			if vd := deltaFor(t, sc, name); vd.HoursLost != 0 || vd.Degraded {
				t.Fatalf("%s lost feed hours to isp-b's exporter dying: %+v", name, vd)
			}
		}
		_ = sys
	})

	t.Run("migration", func(t *testing.T) {
		sys, res := run(t, scenario.PresetMigrationD1)
		sc := res.Scenarios[0]
		// Addresses did not change: a pure control-plane migration is
		// invisible to every traffic and coverage figure.
		for _, vd := range sc.Vantages {
			if vd.DownDeltaPct != 0 || vd.HoursLost != 0 || vd.Degraded || vd.Backends != vd.BaselineBackends {
				t.Fatalf("control-plane migration moved the traffic plane at %s: %+v", vd.Vantage, vd)
			}
		}
		if sc.UnionBackendsDelta != 0 || sc.UnionDownDeltaPct != 0 {
			t.Fatalf("union deltas nonzero under a pure migration: %+v", sc)
		}
		if sc.FaultTotals != nil {
			t.Fatal("migration scenario carries a wire-fault ledger")
		}
		if a, b := figures.FederationCoverage(sys), coverageOf(sys, sc.Federation); a != b {
			t.Fatalf("migration changed the coverage report:\n--- baseline:\n%s\n--- scenario:\n%s", a, b)
		}
	})
}

// TestSuiteRerunByteIdentical: the reproducibility contract — the same
// suite over a fresh world with the same seeds reproduces every
// figure, coverage report, and fault ledger byte for byte.
func TestSuiteRerunByteIdentical(t *testing.T) {
	run := func() (*iotmap.System, *iotmap.SuiteStudyResult) {
		sys := suiteFederation(t)
		res, err := sys.DisruptionSuite(scenario.Presets(5)[scenario.PresetOutageFeedLoss])
		if err != nil {
			t.Fatal(err)
		}
		return sys, res
	}
	sys1, res1 := run()
	sys2, res2 := run()

	if a, b := figures.SuiteDeltas(res1), figures.SuiteDeltas(res2); a != b {
		t.Fatalf("suite deltas not reproducible:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
	for i := range res1.Scenarios {
		a := coverageOf(sys1, res1.Scenarios[i].Federation)
		b := coverageOf(sys2, res2.Scenarios[i].Federation)
		if a != b {
			t.Fatalf("scenario %s coverage not reproducible:\n--- run 1:\n%s\n--- run 2:\n%s",
				res1.Scenarios[i].Name, a, b)
		}
		ft1, ft2 := res1.Scenarios[i].FaultTotals, res2.Scenarios[i].FaultTotals
		if (ft1 == nil) != (ft2 == nil) || (ft1 != nil && *ft1 != *ft2) {
			t.Fatalf("scenario %s fault ledger diverged: %+v vs %+v", res1.Scenarios[i].Name, ft1, ft2)
		}
	}
}

// TestMigrationOriginSemantics: the time-aware origin resolver answers
// with the old AS before the cutover and the new AS after, so an AS
// outage of the abandoned AS stops matching the fleet that left it.
func TestMigrationOriginSemantics(t *testing.T) {
	sys, err := iotmap.New(iotmap.Config{Seed: 3, Scale: 0.02, Lines: 500, SkipLiveScan: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	w := sys.World

	const cutoverHour = 5*24 + 12
	suite := scenario.Suite{Name: "mig", Seed: 9, Steps: []scenario.Step{{
		Name: "move",
		Migration: &scenario.Migration{
			Provider: "bosch", ToASN: scenario.MigrationTargetASN, AtHour: cutoverHour,
		},
	}}}

	var boschAddr netip.Addr
	for _, srv := range w.AllServers() {
		if srv.Provider == "bosch" {
			boschAddr = srv.Addr
			break
		}
	}
	if !boschAddr.IsValid() {
		t.Fatal("world has no bosch servers at this scale")
	}
	oldASN, ok := w.AS.Origin(boschAddr)
	if !ok {
		t.Fatal("bosch address has no origin AS")
	}

	origin := suite.OriginAt(w)
	cutover := w.Days[0].Add(cutoverHour * time.Hour)
	if asn, _ := origin(boschAddr, cutover.Add(-time.Hour)); asn != oldASN {
		t.Fatalf("pre-cutover origin = AS%d, want AS%d", asn, oldASN)
	}
	if asn, _ := origin(boschAddr, cutover); asn != scenario.MigrationTargetASN {
		t.Fatalf("post-cutover origin = AS%d, want AS%d", asn, scenario.MigrationTargetASN)
	}

	// An outage of the abandoned AS matches before the cutover only; an
	// outage of the new AS matches after only.
	addrs := []netip.Addr{boschAddr}
	check := func(asn asdb.ASN, at time.Time) int {
		feed := bgpstream.NewFeed([]bgpstream.Event{{Kind: bgpstream.ASOutage, ASN: asn, At: at}})
		return len(feed.CheckImpactAt(addrs, origin))
	}
	if n := check(oldASN, cutover.Add(-time.Hour)); n != 1 {
		t.Fatalf("pre-cutover outage of the old AS: %d impacts, want 1", n)
	}
	if n := check(oldASN, cutover.Add(time.Hour)); n != 0 {
		t.Fatalf("post-cutover outage of the abandoned AS still matches: %d impacts", n)
	}
	if n := check(scenario.MigrationTargetASN, cutover.Add(time.Hour)); n != 1 {
		t.Fatalf("post-cutover outage of the new AS: %d impacts, want 1", n)
	}
	if n := check(scenario.MigrationTargetASN, cutover.Add(-time.Hour)); n != 0 {
		t.Fatalf("pre-cutover outage of the not-yet-occupied AS matches: %d impacts", n)
	}
}
