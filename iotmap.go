// Package iotmap reproduces "Deep Dive into the IoT Backend Ecosystem"
// (Saidi et al., ACM IMC 2022) as a runnable system: a synthetic Internet
// standing in for the paper's proprietary vantage points, the full
// discovery/validation/footprint methodology of Sections 3-4, the ISP
// traffic analyses of Section 5, and the disruption studies of Section 6.
//
// The package is a staged facade over the internal packages:
//
//	sys, _ := iotmap.New(iotmap.Config{Scale: 0.1, Lines: 10000})
//	defer sys.Close()
//	sys.Discover(ctx)          // Censys + IPv6 scan + DNSDB + active DNS
//	sys.ValidateAndLocate()    // shared-IP filter, geolocation, Table 1
//	sys.TrafficStudy()         // ISP NetFlow simulation + Figures 5-14
//	sys.Disrupt()              // outage + BGP + blocklist, Figures 15-16
//
// Each stage fills the corresponding exported fields; internal/figures
// renders them as the paper's tables and figures.
package iotmap

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"iotmap/internal/asdb"
	"iotmap/internal/bgpstream"
	"iotmap/internal/blocklist"
	"iotmap/internal/certmodel"
	"iotmap/internal/collector"
	"iotmap/internal/core/discovery"
	"iotmap/internal/core/disrupt"
	"iotmap/internal/core/flows"
	"iotmap/internal/core/footprint"
	"iotmap/internal/core/patterns"
	"iotmap/internal/core/validate"
	"iotmap/internal/dnsdb"
	"iotmap/internal/dnszone"
	"iotmap/internal/faultwire"
	"iotmap/internal/geo"
	"iotmap/internal/isp"
	"iotmap/internal/netflow"
	"iotmap/internal/outage"
	"iotmap/internal/scenario"
	"iotmap/internal/simrand"
	"iotmap/internal/vnet"
	"iotmap/internal/world"
)

// Re-exported types so downstream users rarely need internal imports.
type (
	// Pattern is a provider domain pattern (Section 3.2).
	Pattern = patterns.Pattern
	// DiscoveryResult is one provider's discovered address sets.
	DiscoveryResult = discovery.Result
	// Row is a measured Table 1 row.
	Row = footprint.Row
	// Study is the finalized ISP traffic analysis.
	Study = flows.Study
	// OutageReport quantifies Figures 15/16.
	OutageReport = disrupt.OutageReport
	// DisruptionReport is the Section 6.2 summary.
	DisruptionReport = disrupt.Report
	// CascadeEntry is one platform's outage-window impact (§6.1's
	// "Impact on D1-D6" check).
	CascadeEntry = disrupt.CascadeEntry
	// World is the synthetic ground truth.
	World = world.World
)

// Config sizes a reproduction run.
type Config struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Scale multiplies the paper-calibrated deployment sizes (default
	// 0.05; 1.0 reproduces Figure 3's absolute counts).
	Scale float64
	// Lines is the simulated subscriber-line count (default 6000; the
	// paper's ISP serves >15M).
	Lines int
	// Days is the study period (default Feb 28 - Mar 7, 2022).
	Days []time.Time
	// HitlistCoverage is the IPv6 hitlist's fraction of the v6 estate.
	HitlistCoverage float64
	// ScannerThreshold is Figure 5's exclusion threshold (default 100).
	ScannerThreshold int
	// SharedThreshold is the Section 3.4 non-IoT domain threshold.
	SharedThreshold int
	// Outage, when non-nil, injects the scenario into the traffic
	// simulation (use world.OutageDays() as Days for the paper's week).
	Outage *outage.Scenario
	// SkipLiveScan disables the vnet deployment + real TLS scanning of
	// the IPv6 estate (faster; discovery falls back to DNS channels).
	SkipLiveScan bool
	// TrafficMode selects TrafficStudy's data path: TrafficModeMemory
	// (default) hands aggregators in-memory records; TrafficModeWire
	// exports every line shard as framed NetFlow v5 packet streams and
	// re-ingests them through internal/collector — the production-shaped
	// path, byte-identical in output.
	TrafficMode string
	// WireStreams is the concurrent stream count in wire mode
	// (default GOMAXPROCS).
	WireStreams int
	// Vantages configures FederationStudy's vantage-point worlds — one
	// isp.Network per spec, observed through the TrafficMode data path
	// and merged into per-vantage plus union analyses. Empty means one
	// default vantage, which makes FederationStudy produce exactly
	// TrafficStudy's single-ISP results.
	Vantages []VantageSpec
	// FederationWorkers caps how many vantage pipelines FederationStudy
	// runs concurrently (each vantage produces independent shard
	// partials, so the worlds build and simulate in parallel and only
	// the final FederatedMerge joins them). 0 means GOMAXPROCS; 1 runs
	// the vantage loop sequentially.
	FederationWorkers int
	// WireFaults, when non-nil, splices the deterministic chaos harness
	// (internal/faultwire) into every wire-mode stream: each collector
	// read tap is wrapped per the scenario's schedule, keyed by stream
	// index and vantage name. A zero Start is filled with the study's
	// first day so scenario hours align with study hours. Ignored in
	// memory mode.
	WireFaults *faultwire.Scenario
	// WirePolicy picks the collector's stream-fault response in wire
	// mode; the zero value Abort preserves fail-loudly behavior.
	WirePolicy ErrorPolicy
	// WireStallTimeout arms the collector's per-stream read-stall
	// watchdog in wire mode; zero disables it.
	WireStallTimeout time.Duration
	// WireFormat selects the wire-mode on-wire encoding: WireFormatDict
	// (default) ships per-stream address dictionaries and columnar batch
	// frames — the zero-copy hot path; WireFormatV5 keeps the legacy
	// framed NetFlow v5 encoding (what PR 3-6 recorded files use).
	// Figures are byte-identical across both. Ignored in memory mode.
	WireFormat string
	// VantageModifiers, when set, supplies a per-vantage traffic-plane
	// modifier for FederationStudy — the seam the scenario engine uses
	// for vantage-dependent disruptions (a hijack only some vantages'
	// upstreams accepted). It is composed after Config.Outage's
	// modifier via isp.ChainModifiers; returning nil for a vantage
	// leaves that vantage untouched. Ignored by the single-vantage
	// TrafficStudy.
	VantageModifiers func(vantage string) isp.FlowModifier
}

// ErrorPolicy re-exports the collector's stream-fault policy.
type ErrorPolicy = collector.ErrorPolicy

// Wire-mode stream-fault policies (Config.WirePolicy).
const (
	WireAbort            = collector.Abort
	WireDropFrame        = collector.DropFrame
	WireQuarantineStream = collector.QuarantineStream
)

// Fault-injection re-exports, so chaos studies rarely need the
// internal import.
type (
	// FaultScenario schedules deterministic wire faults by stream,
	// vantage, and study hour.
	FaultScenario = faultwire.Scenario
	// FaultRule is one scheduled fault mix within a scenario.
	FaultRule = faultwire.Rule
	// Faults is a rule's fault mix.
	Faults = faultwire.Faults
)

// VantageSpec describes one vantage-point world of a federated run: a
// subscriber population observed through its own sampled NetFlow feed.
// The zero value inherits the run's Config (seed, lines) and the ISP
// model defaults — the paper's residential-ISP vantage. An IXP-style
// vantage is just a spec with aggressive sampling and no scanner lines:
//
//	VantageSpec{Name: "ixp", SamplingRate: 4096, ScannerFraction: -1}
type VantageSpec struct {
	// Name labels the vantage in studies, coverage reports, and
	// collector stream stats (default "vp<index>"). Names must be
	// unique within a run.
	Name string
	// Lines is the subscriber-line count (default Config.Lines).
	Lines int
	// Seed drives the vantage's world. Zero derives a per-vantage seed
	// from Config.Seed — except for the first vantage, which inherits
	// Config.Seed itself so a single-vantage federation reproduces
	// TrafficStudy byte for byte.
	Seed int64
	// SamplingRate is the vantage's NetFlow packet-sampling denominator
	// (default 1:100; IXPs sample far more aggressively).
	SamplingRate uint32
	// ScannerFraction is the share of lines running Internet-wide
	// scanners; zero keeps the ISP default, negative means none (an IXP
	// sees transit, not subscriber scanners).
	ScannerFraction float64
	// IoTPenetration and V6Fraction override the ISP model defaults
	// when positive.
	IoTPenetration float64
	V6Fraction     float64
	// ContinentMix reweights device backend homing per continent (an
	// ISP in another market). Nil keeps each provider's profile mix.
	ContinentMix map[geo.Continent]float64
}

// TrafficStudy data paths (Config.TrafficMode).
const (
	// TrafficModeMemory simulates straight into in-process aggregators.
	TrafficModeMemory = "memory"
	// TrafficModeWire runs simulate→NetFlow-export→collect end-to-end:
	// figures are computed from packets, not memory.
	TrafficModeWire = "wire"
)

// Wire-mode encodings (Config.WireFormat).
const (
	// WireFormatDict is the columnar dictionary encoding (default).
	WireFormatDict = "dict"
	// WireFormatV5 is the legacy framed NetFlow v5 encoding.
	WireFormatV5 = "v5"
)

// wireFormat maps Config.WireFormat to the exporter's enum.
func (c Config) wireFormat() (isp.WireFormat, error) {
	switch c.WireFormat {
	case WireFormatDict, "":
		return isp.WireDict, nil
	case WireFormatV5:
		return isp.WireV5, nil
	default:
		return 0, fmt.Errorf("iotmap: unknown WireFormat %q", c.WireFormat)
	}
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Lines <= 0 {
		c.Lines = 6000
	}
	if c.HitlistCoverage <= 0 {
		c.HitlistCoverage = 0.8
	}
	if c.ScannerThreshold <= 0 {
		c.ScannerThreshold = 100
	}
	if c.SharedThreshold <= 0 {
		c.SharedThreshold = validate.DefaultSharedThreshold
	}
	return c
}

// Validation bundles the Section 3.4 ground-truth reports.
type Validation struct {
	// IPs holds per-provider reports for full-disclosure providers.
	IPs map[string]validate.IPReport
	// Prefixes holds the prefix-level report (Microsoft).
	Prefixes map[string]validate.PrefixReport
	// Traffic holds the active-traffic cross-check (set by Disrupt or
	// TrafficStudy when traffic data exists).
	Traffic map[string]validate.TrafficReport
}

// System is a staged reproduction run.
type System struct {
	Cfg      Config
	World    *world.World
	Patterns []*patterns.Pattern

	// Discover outputs.
	Discovery map[string]*discovery.Result
	PDNS      *dnsdb.DB

	// ValidateAndLocate outputs.
	Dedicated  map[string][]netip.Addr
	Shared     map[string][]netip.Addr
	Located    map[string]map[netip.Addr]footprint.Located
	Rows       map[string]footprint.Row
	Validation Validation

	// TrafficStudy outputs.
	Net      *isp.Network
	Contacts *flows.ContactCounter
	Index    *flows.BackendIndex
	Study    *flows.Study
	// WireExport/WireIngest are the wire-mode transfer counters (nil in
	// memory mode): what the border routers framed onto the streams, and
	// what the collector decoded, scaled, and folded back out of them.
	// WireStreams breaks the ingest down per stream, so anomalies point
	// at the feed that produced them.
	WireExport  *isp.WireStats
	WireIngest  *collector.Stats
	WireStreams []collector.StreamStat

	// FederationStudy outputs.
	Federation *FederationResult

	// Disrupt outputs.
	OutageReport *disrupt.OutageReport
	Cascade      []disrupt.CascadeEntry
	Disruptions  *disrupt.Report

	fabric *vnet.Fabric
}

// VantageResult is one vantage's slice of a federated run.
type VantageResult struct {
	// Spec is the normalized spec the vantage ran with.
	Spec VantageSpec
	// Net is the vantage's subscriber world.
	Net *isp.Network
	// Contacts and Study are the vantage's own Figure 5 counter and
	// Section 5 analysis — exactly what a single-vantage TrafficStudy
	// over this world would produce.
	Contacts *flows.ContactCounter
	Study    *flows.Study
	// WireExport/WireIngest/WireStreams are the wire-mode transfer
	// counters (nil/empty in memory mode); WireStreams breaks the
	// ingest down per stream with vantage attribution.
	WireExport  *isp.WireStats
	WireIngest  *collector.Stats
	WireStreams []collector.StreamStat
}

// FederationResult is FederationStudy's output: per-vantage studies,
// their exact union, and the cross-vantage coverage comparison.
type FederationResult struct {
	// Vantages holds one result per configured spec, in Config order.
	Vantages []*VantageResult
	// Union merges every vantage's analysis exactly (volumes add, sets
	// union; vantage address plans are disjoint so lines never alias).
	Union *flows.Study
	// UnionContacts is the merged Figure 5 counter.
	UnionContacts *flows.ContactCounter
	// Coverage is the backends/providers-per-vantage comparison.
	Coverage *flows.CoverageReport
}

// New builds the synthetic world for a run.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	w, err := world.Build(world.Config{Seed: cfg.Seed, Scale: cfg.Scale, Days: cfg.Days})
	if err != nil {
		return nil, err
	}
	return &System{
		Cfg:      cfg,
		World:    w,
		Patterns: patterns.All(),
	}, nil
}

// Close releases the virtual network, if any.
func (s *System) Close() {
	if s.fabric != nil {
		s.fabric.Close()
		s.fabric = nil
	}
}

// Discover runs the Section 3.3 source fusion.
func (s *System) Discover(ctx context.Context) error {
	in := discovery.Inputs{
		Patterns: s.Patterns,
		Censys:   s.World.BuildCensys(),
		PDNS:     s.World.BuildDNSDB(),
		Zones:    func(d int) *dnszone.Store { return s.World.ZoneStore(d) },
		Views:    world.VantagePointViews,
		Days:     s.World.Days,
		Seed:     s.Cfg.Seed,
	}
	s.PDNS = in.PDNS
	if !s.Cfg.SkipLiveScan {
		s.fabric = vnet.New()
		ca, err := certmodel.NewCA("IoT Backend Study CA")
		if err != nil {
			return err
		}
		if err := s.World.DeployServers(s.fabric, ca, s.World.V6Servers()); err != nil {
			return err
		}
		in.Fabric = s.fabric
		in.Hitlist = s.World.BuildHitlist(s.Cfg.HitlistCoverage)
	}
	res, err := discovery.Run(ctx, in)
	if err != nil {
		return err
	}
	s.Discovery = res
	return nil
}

// ValidateAndLocate runs the Section 3.4 filters, the Section 4
// geolocation and characterization, and the ground-truth validation.
func (s *System) ValidateAndLocate() error {
	if s.Discovery == nil {
		return fmt.Errorf("iotmap: Discover must run first")
	}
	s.Dedicated = map[string][]netip.Addr{}
	s.Shared = map[string][]netip.Addr{}
	s.Located = map[string]map[netip.Addr]footprint.Located{}
	s.Rows = map[string]footprint.Row{}
	s.Validation = Validation{
		IPs:      map[string]validate.IPReport{},
		Prefixes: map[string]validate.PrefixReport{},
		Traffic:  map[string]validate.TrafficReport{},
	}
	period := dnsdb.TimeRange{From: s.World.Days[0], To: s.World.Days[len(s.World.Days)-1].Add(24 * time.Hour)}
	for _, p := range s.Patterns {
		id := p.ProviderID()
		res := s.Discovery[id]
		union := res.Union()
		addrs := res.UnionAddrs()
		ded, shared, _ := validate.FilterShared(addrs, s.Patterns, s.PDNS, period, s.Cfg.SharedThreshold)
		s.Dedicated[id] = ded
		s.Shared[id] = shared

		located := footprint.Geolocate(p, union, s.World.Geo, s.World.GeoVotes)
		s.Located[id] = located
		// Characterize over the dedicated set only (Section 5 uses only
		// exclusively-IoT infrastructure).
		dedUnion := map[netip.Addr]*discovery.AddrInfo{}
		for _, a := range ded {
			dedUnion[a] = union[a]
		}
		s.Rows[id] = footprint.Characterize(id, dedUnion, located, s.World.AS)

		// Ground truth.
		if disclosed := s.World.DisclosedIPs(id); disclosed != nil {
			s.Validation.IPs[id] = validate.AgainstIPs(addrs, disclosed)
		}
		if prefixes := s.World.DisclosedPrefixes(id); prefixes != nil {
			s.Validation.Prefixes[id] = validate.AgainstPrefixes(addrs, prefixes)
		}
	}
	return nil
}

// TrafficStudy runs the single-pass sharded simulate→aggregate pipeline
// over the validated backend sets: line-major workers each simulate
// their lines' whole week straight into a worker-local aggregate,
// scanner lines are classified the moment their week completes
// (Section 5.2's Richter-style exclusion), and the shard partials merge
// order-independently into the Figure 5 contact curve and the full
// Section 5 traffic study — one simulation pass for both analyses, as
// the paper runs both over the same recorded NetFlow feed.
func (s *System) TrafficStudy() error {
	net, idx, err := s.TrafficInputs()
	if err != nil {
		return err
	}
	s.Net = net
	s.Index = idx
	s.WireExport, s.WireIngest, s.WireStreams = nil, nil, nil
	s.anchorFaultClock()

	focusAlias, focusRegion := "T1", "us-east-1"
	if s.Cfg.Outage != nil {
		focusRegion = s.Cfg.Outage.Region
	}
	opts := flows.Options{
		ScannerThreshold: s.Cfg.ScannerThreshold,
		SamplingRate:     net.Cfg.SamplingRate,
		FocusAlias:       focusAlias,
		FocusRegion:      focusRegion,
	}
	run, err := s.runPipeline(net, idx, opts)
	if err != nil {
		return err
	}
	cc, col := flows.MergePartials(run.parts)
	s.Contacts = cc
	s.Study = col.Study()
	s.WireExport = run.wireExport
	s.WireIngest = run.wireIngest
	s.WireStreams = run.streamStats

	// Traffic cross-check for the prefix-disclosing providers
	// (Section 3.4's "52 active IPs, 4 missed, <1% volume").
	s.trafficCrossCheck(s.Study.BackendVolumes())
	return nil
}

// trafficCrossCheck fills the §3.4 active-traffic validation from the
// per-backend volume evidence of a completed study.
func (s *System) trafficCrossCheck(volumes map[netip.Addr]float64) {
	for id := range s.Validation.Prefixes {
		perProvider := map[netip.Addr]float64{}
		for a, v := range volumes {
			if srv, ok := s.World.ServerAt(a); ok && srv.Provider == id {
				perProvider[a] = v
			}
		}
		s.Validation.Traffic[id] = validate.AgainstTraffic(s.Discovery[id].UnionAddrs(), perProvider)
	}
}

// TrafficInputs builds the traffic stage's raw material — the ISP
// subscriber model (with any configured outage modifier installed) and
// the backend index over the validated dedicated sets — without running
// an analysis. TrafficStudy uses it internally; standalone
// exporter/collector frontends (cmd/iotcollect) use it to drive the
// wire path by hand. Requires ValidateAndLocate.
func (s *System) TrafficInputs() (*isp.Network, *flows.BackendIndex, error) {
	idx, err := s.backendIndex()
	if err != nil {
		return nil, nil, err
	}
	net, err := isp.NewNetwork(isp.Config{Seed: s.Cfg.Seed, Lines: s.Cfg.Lines}, s.World)
	if err != nil {
		return nil, nil, err
	}
	if s.Cfg.Outage != nil {
		net.Modifier = s.Cfg.Outage.Modifier()
	}
	return net, idx, nil
}

// backendIndex builds the collector's backend index over the validated
// dedicated sets — the single source of truth every vantage of a
// federated run shares (discovery is global; only the observation
// points differ). Requires ValidateAndLocate.
func (s *System) backendIndex() (*flows.BackendIndex, error) {
	if s.Rows == nil {
		return nil, fmt.Errorf("iotmap: ValidateAndLocate must run first")
	}
	idx := flows.NewBackendIndex()
	for _, p := range s.Patterns {
		id := p.ProviderID()
		alias := s.World.AliasOf(id)
		union := s.Discovery[id].Union()
		located := s.Located[id]
		for _, a := range s.Dedicated[id] {
			loc := located[a]
			certFound := union[a] != nil && union[a].Sources.Has(discovery.SrcCert)
			idx.Add(a, alias, loc.Location.Continent, loc.Location.Region, certFound)
		}
	}
	// Freeze the dense ID assignment before the pipelines (possibly many
	// concurrent vantage worlds) start classifying against it.
	idx.Build()
	return idx, nil
}

// pipelineRun is one vantage world pushed through the configured
// traffic data path: its vantage-tagged shard partials, plus the wire
// transfer stats when the feed crossed the wire (nil in memory mode).
type pipelineRun struct {
	parts       []*flows.ShardPartial
	wireExport  *isp.WireStats
	wireIngest  *collector.Stats
	streamStats []collector.StreamStat
}

// runPipeline drives one network through the Config.TrafficMode data
// path into shard partials — the single pipeline seam TrafficStudy and
// FederationStudy share. Memory mode simulates straight into a sharded
// aggregator; wire mode exports every line shard as a framed NetFlow v5
// stream over an in-process pipe (synchronous — collector backpressure
// throttles the exporter) and decodes, validates, and rescales it back.
// Merging the partials yields byte-identical results either way.
func (s *System) runPipeline(net *isp.Network, idx *flows.BackendIndex, opts flows.Options) (pipelineRun, error) {
	switch s.Cfg.TrafficMode {
	case TrafficModeMemory, "":
		agg := flows.NewShardedAggregator(idx, s.World.Days, opts, runtime.GOMAXPROCS(0))
		net.SimulateLines(agg.Shards(),
			func(shard int) func(netflow.Record) { return agg.Shard(shard).Ingest },
			func(shard int, _ *isp.Line) { agg.Shard(shard).EndLine() },
		)
		parts := make([]*flows.ShardPartial, agg.Shards())
		for i := range parts {
			parts[i] = agg.Shard(i)
		}
		return pipelineRun{parts: parts}, nil
	case TrafficModeWire:
		format, err := s.Cfg.wireFormat()
		if err != nil {
			return pipelineRun{}, err
		}
		streams := s.Cfg.WireStreams
		if streams <= 0 {
			streams = runtime.GOMAXPROCS(0)
		}
		ccfg := collector.Config{
			Index: idx, Days: s.World.Days, Opts: opts,
			Policy:       s.Cfg.WirePolicy,
			StallTimeout: s.Cfg.WireStallTimeout,
		}
		if sc := s.Cfg.WireFaults; sc != nil {
			vantage := opts.Vantage
			ccfg.Tap = func(stream int, _ string, r io.Reader) io.Reader {
				return sc.Wrap(stream, vantage, r)
			}
		}
		col, err := collector.New(ccfg)
		if err != nil {
			return pipelineRun{}, err
		}
		writers, wait := col.IngestPipes(streams)
		wireStats, exportErr := net.SimulateLinesToWireFormat(writers, 0, format)
		if err := wait(); err != nil {
			return pipelineRun{}, err
		}
		if exportErr != nil {
			return pipelineRun{}, exportErr
		}
		ingestStats := col.Stats()
		return pipelineRun{
			parts:       col.Partials(),
			wireExport:  &wireStats,
			wireIngest:  &ingestStats,
			streamStats: col.StreamStats(),
		}, nil
	default:
		return pipelineRun{}, fmt.Errorf("iotmap: unknown TrafficMode %q", s.Cfg.TrafficMode)
	}
}

// vantageSpecs normalizes Config.Vantages: an empty list becomes one
// default vantage, zero-valued fields inherit the run Config, and the
// first vantage's zero seed inherits Config.Seed itself so the default
// federation is TrafficStudy under another name.
func (s *System) vantageSpecs() ([]VantageSpec, error) {
	specs := s.Cfg.Vantages
	if len(specs) == 0 {
		specs = []VantageSpec{{}}
	}
	out := make([]VantageSpec, len(specs))
	seen := map[string]struct{}{}
	for i, sp := range specs {
		if sp.Name == "" {
			sp.Name = fmt.Sprintf("vp%d", i)
		}
		if _, dup := seen[sp.Name]; dup {
			return nil, fmt.Errorf("iotmap: duplicate vantage name %q", sp.Name)
		}
		seen[sp.Name] = struct{}{}
		if sp.Lines <= 0 {
			sp.Lines = s.Cfg.Lines
		}
		if sp.Seed == 0 {
			if i == 0 {
				sp.Seed = s.Cfg.Seed
			} else {
				sp.Seed = simrand.SeedN(s.Cfg.Seed, "vantage", int64(i))
			}
		}
		out[i] = sp
	}
	return out, nil
}

// FederationStudy is the multi-vantage TrafficStudy: one isp.Network
// per configured VantageSpec (each with its own seed, sampling rate,
// and disjoint subscriber address plan), every world streamed through
// the single-pass sharded pipeline — in-memory or over framed NetFlow
// streams per Config.TrafficMode, with per-feed vantage attribution in
// the collector stats — and the vantage-tagged shard partials folded by
// flows.FederatedMerge into per-vantage studies, an exact union study,
// and the cross-vantage coverage report (which backends are visible
// from which vantage — the paper's ISP-versus-IXP comparison angle).
// The vantage worlds are independent until the merge, so they run
// concurrently (Config.FederationWorkers, default GOMAXPROCS); partials
// are collected in spec order and the merge is order-independent, so
// the result is identical to a sequential drive. With no Vantages
// configured it runs one default vantage whose study is byte-identical
// to TrafficStudy's. Requires ValidateAndLocate.
func (s *System) FederationStudy() error {
	specs, err := s.vantageSpecs()
	if err != nil {
		return err
	}
	idx, err := s.backendIndex()
	if err != nil {
		return err
	}
	s.anchorFaultClock()

	focusAlias, focusRegion := "T1", "us-east-1"
	if s.Cfg.Outage != nil {
		focusRegion = s.Cfg.Outage.Region
	}
	workers := s.Cfg.FederationWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runs := make([]pipelineRun, len(specs))
	errs := make([]error, len(specs))
	results := make([]*VantageResult, len(specs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp VantageSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			net, err := isp.NewNetwork(isp.Config{
				Seed:            sp.Seed,
				Lines:           sp.Lines,
				SamplingRate:    sp.SamplingRate,
				ScannerFraction: sp.ScannerFraction,
				IoTPenetration:  sp.IoTPenetration,
				V6Fraction:      sp.V6Fraction,
				VantageID:       i,
				ContinentBias:   sp.ContinentMix,
			}, s.World)
			if err != nil {
				errs[i] = fmt.Errorf("iotmap: vantage %q: %w", sp.Name, err)
				return
			}
			// A backend-side outage is visible from every vantage; the
			// scenario engine's per-vantage modifiers compose after it
			// (first drop wins, so unaffected flows stay bit-identical
			// to a modifier-less baseline).
			var mods []isp.FlowModifier
			if s.Cfg.Outage != nil {
				mods = append(mods, s.Cfg.Outage.Modifier())
			}
			if s.Cfg.VantageModifiers != nil {
				mods = append(mods, s.Cfg.VantageModifiers(sp.Name))
			}
			net.Modifier = isp.ChainModifiers(mods...)
			opts := flows.Options{
				ScannerThreshold: s.Cfg.ScannerThreshold,
				SamplingRate:     net.Cfg.SamplingRate,
				FocusAlias:       focusAlias,
				FocusRegion:      focusRegion,
				Vantage:          sp.Name,
			}
			run, err := s.runPipeline(net, idx, opts)
			if err != nil {
				errs[i] = fmt.Errorf("iotmap: vantage %q: %w", sp.Name, err)
				return
			}
			runs[i] = run
			results[i] = &VantageResult{
				Spec:        sp,
				Net:         net,
				WireExport:  run.wireExport,
				WireIngest:  run.wireIngest,
				WireStreams: run.streamStats,
			}
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var parts []*flows.ShardPartial
	for i := range runs {
		parts = append(parts, runs[i].parts...)
	}

	fed := flows.FederatedMerge(parts)
	for _, vr := range results {
		vr.Contacts = fed.CC[vr.Spec.Name]
		vr.Study = fed.Col[vr.Spec.Name].Study()
	}
	union := fed.UnionCol.Study()
	s.Federation = &FederationResult{
		Vantages:      results,
		Union:         union,
		UnionContacts: fed.UnionCC,
		Coverage:      fed.Coverage(),
	}

	// §3.4 traffic cross-check over the federated union — with one
	// vantage this is exactly TrafficStudy's per-backend evidence.
	s.trafficCrossCheck(union.BackendVolumes())
	return nil
}

// anchorFaultClock aligns a configured fault scenario's hour clock with
// the study period. Idempotent and single-threaded (called before any
// pipeline goroutine starts), so repeated studies stay deterministic.
func (s *System) anchorFaultClock() {
	if s.Cfg.WireFaults != nil && s.Cfg.WireFaults.Start.IsZero() {
		s.Cfg.WireFaults.Start = s.World.Days[0]
	}
}

// DisruptionScenario is one what-if of a DisruptionStudy: a named
// combination of a backend-side outage (simulated into the traffic
// itself, visible from every vantage) and/or a wire-side fault schedule
// (feeds corrupting or dying on the way to the collector).
type DisruptionScenario struct {
	Name string
	// Outage replaces Config.Outage for this run (nil: no outage).
	Outage *outage.Scenario
	// Faults replaces Config.WireFaults for this run (nil: clean wire).
	// Wire faults need TrafficModeWire and a non-Abort WirePolicy to
	// produce a degraded-but-complete study.
	Faults *faultwire.Scenario
	// ModifierFor replaces Config.VantageModifiers for this run (nil:
	// no per-vantage traffic effects) — the scenario engine's compiled
	// hijack/outage/blip modifiers arrive here.
	ModifierFor func(vantage string) isp.FlowModifier
}

// FaultCounts re-exports the chaos harness's fault ledger.
type FaultCounts = faultwire.Counts

// VantageDelta compares one vantage between the baseline federation and
// a disruption scenario.
type VantageDelta struct {
	Vantage string
	// Backends / BaselineBackends are the vantage's visible-backend
	// counts in the scenario and baseline runs.
	Backends, BaselineBackends int
	// HoursLost counts study hours the vantage covered in the baseline
	// but not under the scenario.
	HoursLost int
	// Degraded mirrors the scenario coverage report's flag.
	Degraded bool
	// DownDeltaPct is the downstream-volume change vs baseline, in
	// percent (negative: the scenario lost traffic).
	DownDeltaPct float64
}

// ScenarioResult is one scenario's full federated outcome plus the
// deltas against the baseline.
type ScenarioResult struct {
	Name string
	// Federation is the scenario's complete federated study.
	Federation *FederationResult
	// Vantages holds per-vantage deltas, in coverage-report order.
	Vantages []VantageDelta
	// UnionBackendsDelta is the union visible-backend change.
	UnionBackendsDelta int
	// UnionDownDeltaPct is the union downstream-volume change (%).
	UnionDownDeltaPct float64
	// FaultTotals is the scenario's reproducible wire-fault ledger
	// (nil when the scenario injected no wire faults): what the chaos
	// harness actually did to the feeds during this run.
	FaultTotals *FaultCounts
}

// DisruptionStudyResult is DisruptionStudy's output.
type DisruptionStudyResult struct {
	// Baseline is the clean federated study every scenario is compared
	// against.
	Baseline *FederationResult
	// Scenarios holds one result per input scenario, in order.
	Scenarios []ScenarioResult
}

// studyDownTotal sums a study's downstream volume across aliases.
func studyDownTotal(st *flows.Study) float64 {
	total := 0.0
	for _, alias := range st.Aliases() {
		if s := st.Downstream(alias); s != nil {
			for _, v := range s.Values {
				total += v
			}
		}
	}
	return total
}

func pctDelta(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return (got - base) / base * 100
}

// DisruptionStudy drives outage and wire-fault what-ifs through the
// federated pipeline: it runs (or reuses) the clean FederationStudy as
// the baseline, then re-runs the same federation once per scenario with
// the scenario's outage modifier and fault schedule installed, and
// reports per-vantage and union deltas — visible backends, downstream
// volume, hours of feed coverage lost, and which vantages ended
// degraded. The System itself keeps its baseline results; scenario runs
// happen on throwaway copies. Requires ValidateAndLocate.
func (s *System) DisruptionStudy(scenarios []DisruptionScenario) (*DisruptionStudyResult, error) {
	if s.Federation == nil {
		if err := s.FederationStudy(); err != nil {
			return nil, err
		}
	}
	base := s.Federation
	baseCov := map[string]flows.VantageCoverage{}
	for _, vc := range base.Coverage.Vantages {
		baseCov[vc.Vantage] = vc
	}
	baseDown := map[string]float64{}
	for _, vr := range base.Vantages {
		baseDown[vr.Spec.Name] = studyDownTotal(vr.Study)
	}
	baseUnionDown := studyDownTotal(base.Union)

	out := &DisruptionStudyResult{Baseline: base}
	for _, sc := range scenarios {
		tmp := *s
		tmp.Cfg.Outage = sc.Outage
		tmp.Cfg.WireFaults = sc.Faults
		tmp.Cfg.VantageModifiers = sc.ModifierFor
		tmp.Federation = nil
		// trafficCrossCheck writes into Validation.Traffic; give the
		// throwaway run its own map so the baseline stays untouched.
		tmp.Validation.Traffic = map[string]validate.TrafficReport{}
		if err := tmp.FederationStudy(); err != nil {
			return nil, fmt.Errorf("iotmap: scenario %q: %w", sc.Name, err)
		}
		fed := tmp.Federation
		res := ScenarioResult{Name: sc.Name, Federation: fed}
		scenDown := map[string]float64{}
		for _, vr := range fed.Vantages {
			scenDown[vr.Spec.Name] = studyDownTotal(vr.Study)
		}
		for _, vc := range fed.Coverage.Vantages {
			bc := baseCov[vc.Vantage]
			res.Vantages = append(res.Vantages, VantageDelta{
				Vantage:          vc.Vantage,
				Backends:         vc.Backends,
				BaselineBackends: bc.Backends,
				HoursLost:        bc.HoursCovered - vc.HoursCovered,
				Degraded:         vc.Degraded,
				DownDeltaPct:     pctDelta(baseDown[vc.Vantage], scenDown[vc.Vantage]),
			})
		}
		res.UnionBackendsDelta = fed.Coverage.Union - base.Coverage.Union
		res.UnionDownDeltaPct = pctDelta(baseUnionDown, studyDownTotal(fed.Union))
		if sc.Faults != nil {
			totals := sc.Faults.Totals()
			res.FaultTotals = &totals
		}
		out.Scenarios = append(out.Scenarios, res)
	}
	return out, nil
}

// SuiteStudyResult is DisruptionSuite's output: the per-step (and
// cumulative) disruption study plus the suite's control-plane view —
// the BGP events it injected and which of them touched a monitored
// backend, resolved with migration-aware AS origins.
type SuiteStudyResult struct {
	*DisruptionStudyResult
	// Suite is the suite's name.
	Suite string
	// Events are the suite's injected BGP feed entries.
	Events []bgpstream.Event
	// Impacts are the Section 6.2 what-if hits: suite events covering a
	// validated backend address or its (time-aware) hosting AS.
	Impacts []bgpstream.Impact
}

// DisruptionSuite compiles a declarative scenario suite against the
// run's world and drives it through DisruptionStudy: one scenario per
// step (per-step deltas vs the clean baseline) plus — for multi-step
// suites — a cumulative everything-at-once scenario, each carrying its
// wire-fault ledger. The control-plane side runs alongside: the
// suite's hijack announcements are checked against the validated
// backend sets with bgpstream.CheckImpactAt, using migration-aware AS
// origin resolution, so an AS outage of an abandoned AS would stop
// matching after cutover. Every draw derives from the suite seed;
// reruns are byte-identical. Requires ValidateAndLocate.
func (s *System) DisruptionSuite(suite scenario.Suite) (*SuiteStudyResult, error) {
	compiled, err := suite.Compile(s.World)
	if err != nil {
		return nil, err
	}
	scenarios := make([]DisruptionScenario, len(compiled))
	for i, c := range compiled {
		scenarios[i] = DisruptionScenario{
			Name:        c.Name,
			Faults:      c.Faults,
			ModifierFor: c.ModifierFor,
		}
	}
	study, err := s.DisruptionStudy(scenarios)
	if err != nil {
		return nil, err
	}
	out := &SuiteStudyResult{DisruptionStudyResult: study, Suite: suite.Name}
	out.Events = suite.Events(s.World)
	if len(out.Events) > 0 {
		var addrs []netip.Addr
		for _, id := range s.World.Order {
			addrs = append(addrs, s.Dedicated[id]...)
		}
		feed := bgpstream.NewFeed(out.Events)
		out.Impacts = feed.CheckImpactAt(addrs, suite.OriginAt(s.World))
	}
	return out, nil
}

// Disrupt runs the Section 6 analyses: the outage report when the run
// was configured with a scenario, and the BGP/blocklist checks.
func (s *System) Disrupt() error {
	if s.Study == nil {
		return fmt.Errorf("iotmap: TrafficStudy must run first")
	}
	if s.Cfg.Outage != nil {
		rep, err := disrupt.AnalyzeOutage(s.Study, *s.Cfg.Outage, s.World.Days)
		if err != nil {
			return err
		}
		s.OutageReport = &rep
		s.Cascade = disrupt.AnalyzeCascade(s.Study, *s.Cfg.Outage)
	}
	avoid := map[asdb.ASN]struct{}{}
	for _, as := range s.World.AS.ASes() {
		avoid[as.Number] = struct{}{}
	}
	cfg := bgpstream.PaperWeek(s.World.Days)
	cfg.AvoidASNs = avoid
	feed, err := bgpstream.Generate(cfg, s.Cfg.Seed)
	if err != nil {
		return err
	}
	agg := blocklist.BuildFireHOL(s.World, s.Cfg.Seed)
	var addrs []netip.Addr
	owners := map[netip.Addr]string{}
	for id, ded := range s.Dedicated {
		for _, a := range ded {
			addrs = append(addrs, a)
			owners[a] = id
		}
	}
	rep := disrupt.Analyze(feed, agg, addrs, s.World.AS, func(a netip.Addr) string { return owners[a] })
	s.Disruptions = &rep
	return nil
}

// RunAll executes every stage.
func (s *System) RunAll(ctx context.Context) error {
	if err := s.Discover(ctx); err != nil {
		return err
	}
	if err := s.ValidateAndLocate(); err != nil {
		return err
	}
	if err := s.TrafficStudy(); err != nil {
		return err
	}
	return s.Disrupt()
}

// ProviderIDs returns the providers in Table 1 order.
func (s *System) ProviderIDs() []string { return append([]string(nil), s.World.Order...) }

// AliasOf maps a provider ID to its anonymized label.
func (s *System) AliasOf(id string) string { return s.World.AliasOf(id) }

// AWSOutageScenario returns the paper's Dec 7 2021 scenario positioned
// within world.OutageDays().
func AWSOutageScenario() *outage.Scenario {
	sc := outage.AWSUSEast1(4)
	return &sc
}

// OutageStudyDays returns the December 2021 study period.
func OutageStudyDays() []time.Time { return world.OutageDays() }

// StudyDays returns the primary February/March 2022 study period.
func StudyDays() []time.Time { return world.StudyDays() }
